(** Crash supervision for shard updater domains.

    [start] spawns a domain running [run] and keeps it running across
    crashes: an exception escaping [run] is caught, counted
    ([updater_crashes] metric, [Updater_crash] trace), and — after an
    exponential backoff (seeded-jittered when [jitter_seed] is given),
    rate-limited by a windowed restart budget — a fresh domain is
    spawned to run [run] again
    ([updater_restarts] metric, [Updater_restart] trace, crash-to-running
    latency sampled into [updater_restart_ns]). Backlog adoption is
    [run]'s own job (the restarted updater re-reads the surviving
    {!Mod_queue} and any pending batch, see {!Shard_router}); the
    supervisor only decides {e whether} and {e when} to restart.

    Past [max_restarts] crashes within a [reset_after_ns] window the
    chain gives up: [failed] becomes true, [on_failed] runs once (mark
    the shard failed, purge its queue), and no further incarnation is
    spawned. A clean return from [run] (shutdown) ends the chain without
    any of that.

    Implementation note: restarts are chain-respawns — the dying
    incarnation spawns its successor — so the crash bookkeeping is
    single-threaded by construction and no monitor domain is needed.
    Each successor joins its predecessor on startup, so only the newest
    domain handle is retained (nothing accumulates across a long-lived
    shard's restarts) and {!join} reaches the whole chain through it. *)

type policy = {
  max_restarts : int;
      (** crashes tolerated within a window before declaring failure *)
  backoff_base_ns : int;  (** first restart delay *)
  backoff_max_ns : int;  (** delay cap (doubling saturates here) *)
  reset_after_ns : int;
      (** a crash-free gap this long resets the crash count — steady
          rare crashes restart forever, a crash loop exhausts the
          budget *)
}

val default_policy : policy
(** 8 restarts, 1 ms base, 100 ms cap, 1 s reset window. *)

type t

val start :
  ?policy:policy ->
  ?jitter_seed:int64 ->
  ?on_crash:(exn -> unit) ->
  ?forget_backlog:(unit -> unit) ->
  shard:int ->
  abort:(unit -> bool) ->
  on_failed:(exn -> unit) ->
  (unit -> unit) ->
  t
(** Spawn the first incarnation of [run]. [abort] is polled during
    backoff sleeps and before every respawn — once it returns true the
    chain exits instead of restarting (forced shutdown). [on_failed]
    runs exactly once, from the dying incarnation, when the budget is
    exhausted. [on_crash] fires on {e every} crash, before the backoff
    sleep (the router trips the shard's {!Breaker} here); exceptions it
    raises are swallowed. [jitter_seed] arms backoff jitter: each sleep
    is scaled into [0.5, 1.0) of nominal by a chain-private
    deterministic stream, so shards felled by one fault respawn
    decorrelated yet reproducibly — give each shard
    [logxor run_seed shard_salt]. Unset = jitter-free (exact doubling),
    preserving old behaviour. [forget_backlog] is a seeded chaos
    mutation hook (run just before each respawn); production callers
    leave it unset — see {!Chaos.mutation}. [shard] labels traces and
    metrics.
    @raise Invalid_argument on a nonsensical policy. *)

val shard : t -> int

val finished : t -> bool
(** The chain has exited — cleanly, by failure, or by abort. Poll this
    (with a deadline) before {!join}; a live incarnation can be wedged
    arbitrarily long and joining it would inherit the wedge. *)

val failed : t -> bool
val crashes : t -> int
val restarts : t -> int

val join : t -> unit
(** Join every incarnation ever spawned (via the newest handle — each
    incarnation already joined its predecessor; the newest is always
    published before it can run, so a true {!finished} never races a
    stale handle). Idempotent. Call only once {!finished} is true. *)

val restart_latencies_ns : t -> int list
(** Crash-to-replacement-running samples, newest first — the recovery
    latencies the chaos harness bounds at p99. Stable once {!finished}. *)
