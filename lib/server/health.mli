(** Per-shard health state machine for serving-layer overload control.

    Three states, one atomic int, consulted on every write admission
    (see {!Shard_router} and SERVING.md):

    - [Healthy] — everything admitted.
    - [Degraded] — the shard is falling behind (queue depth crossed the
      high watermark, the staleness watchdog fired, or reclamation
      pressure latched — see {!observe_reclaim_pressure}).
      Fire-and-forget writes are shed first — they carry no waiter to
      slow down, and shedding them is what lets the queue drain — while
      completion-waited writes are still admitted (their waiters are the
      natural backpressure). Recovery is hysteretic: the shard heals only
      once depth falls to the low watermark {e and} the pressure latch is
      clear, so it does not flap at the boundary and cannot heal while
      reclamation debt is still accumulating.
    - [Failed] — terminal; entered by {!mark_failed} when the shard's
      supervisor exhausts its restart budget ({!Supervisor}). Reads keep
      working (the tree is intact); writes are rejected with
      [`Failed]. Counts [shards_failed] once.

    Every transition records a [Shard_state] trace event with
    [arg = shard * 4 + state] (0 healthy / 1 degraded / 2 failed). *)

type state = Healthy | Degraded | Failed

type t

val create :
  ?high_frac:float ->
  ?low_frac:float ->
  ?pressure_high:float ->
  ?pressure_low:float ->
  shard:int ->
  capacity:int ->
  unit ->
  t
(** Depth watermarks as fractions of the owning queue's [capacity]
    (defaults 0.75 / 0.25); reclamation-pressure latch thresholds in
    {!Repro_citrus.Citrus.reclaim_pressure} units — fraction of the
    reclaimer's retired-bag watermark (defaults 0.75 / 0.25, and note
    pressure may transiently exceed 1.0).
    @raise Invalid_argument unless [0 <= low_frac < high_frac <= 1],
      [0 <= pressure_low < pressure_high] and [capacity > 0]. *)

val shard : t -> int
val state : t -> state

val state_name : state -> string
(** ["healthy" | "degraded" | "failed"] — the JSON-report spelling. *)

val high_watermark : t -> int
val low_watermark : t -> int

val observe_depth : t -> int -> unit
(** Feed the current queue depth (producers call this on the enqueue
    path; one atomic load plus a compare when nothing changes). *)

val note_stall : t -> unit
(** Degrade because the staleness watchdog fired — the updater is not
    draining regardless of depth. *)

val observe_reclaim_pressure : t -> float -> unit
(** Feed the shard's reclamation pressure (the updater polls
    [reclaim_pressure] each drain cycle — see {!Shard_router}). At or
    above [pressure_high] the latch sets and a healthy shard degrades:
    reclamation debt is overload even with an empty queue, since every
    applied write retires memory nothing is freeing. While latched,
    {!observe_depth} cannot heal the shard — shedding empties the queue
    quickly, but the retired backlog shrinks only when grace periods
    complete. At or below [pressure_low] the latch clears and recovery
    returns to depth-driven hysteresis. *)

val pressure_latched : t -> bool
(** The reclamation-pressure latch is set (monitoring). *)

val mark_failed : t -> bool
(** Terminal. [true] for the caller that performed the transition (it
    should purge the queue); [false] if already failed. *)
