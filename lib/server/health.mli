(** Per-shard health state machine for serving-layer overload control.

    Three states, one atomic int, consulted on every write admission
    (see {!Shard_router} and SERVING.md):

    - [Healthy] — everything admitted.
    - [Degraded] — the shard is falling behind (queue depth crossed the
      high watermark, or the staleness watchdog fired). Fire-and-forget
      writes are shed first — they carry no waiter to slow down, and
      shedding them is what lets the queue drain — while
      completion-waited writes are still admitted (their waiters are the
      natural backpressure). Recovery is hysteretic: the shard heals only
      once depth falls to the low watermark, so it does not flap at the
      boundary.
    - [Failed] — terminal; entered by {!mark_failed} when the shard's
      supervisor exhausts its restart budget ({!Supervisor}). Reads keep
      working (the tree is intact); writes are rejected with
      [`Failed]. Counts [shards_failed] once.

    Every transition records a [Shard_state] trace event with
    [arg = shard * 4 + state] (0 healthy / 1 degraded / 2 failed). *)

type state = Healthy | Degraded | Failed

type t

val create :
  ?high_frac:float -> ?low_frac:float -> shard:int -> capacity:int -> unit -> t
(** Watermarks as fractions of the owning queue's [capacity]; defaults
    0.75 / 0.25. @raise Invalid_argument unless
    [0 <= low_frac < high_frac <= 1] and [capacity > 0]. *)

val shard : t -> int
val state : t -> state

val state_name : state -> string
(** ["healthy" | "degraded" | "failed"] — the JSON-report spelling. *)

val high_watermark : t -> int
val low_watermark : t -> int

val observe_depth : t -> int -> unit
(** Feed the current queue depth (producers call this on the enqueue
    path; one atomic load plus a compare when nothing changes). *)

val note_stall : t -> unit
(** Degrade because the staleness watchdog fired — the updater is not
    draining regardless of depth. *)

val mark_failed : t -> bool
(** Terminal. [true] for the caller that performed the transition (it
    should purge the queue); [false] if already failed. *)
