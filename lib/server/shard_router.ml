module Rng = Repro_sync.Rng
module Backoff = Repro_sync.Backoff

(* A sharded dictionary service: keys are hashed across [shards]
   independent trees, each with its own RCU domain registration, lock
   classes and bounded modification queue drained by a dedicated updater
   domain. Reads go straight to the owning shard's tree (wait-free, as in
   the paper); writes are enqueued and applied asynchronously, so a
   client never pays a grace period — the updater does, and while one
   shard's updater is blocked in synchronize the other shards' updaters
   keep draining. See SERVING.md. *)

module Make (D : Repro_dict.Dict.DICT) = struct
  type shard = { table : D.t; queue : Mod_queue.t }

  type t = {
    shards : shard array;
    drain_batch : int;
    stop : bool Atomic.t;
    mutable updaters : unit Domain.t list; (* [] until start *)
  }

  type handle = { router : t; handles : D.handle array }

  let create ?(shards = 4) ?(queue_depth = 1024) ?(drain_batch = 64)
      ?(max_clients = 64) () =
    if shards <= 0 then
      invalid_arg "Shard_router.create: shards must be positive";
    if drain_batch <= 0 then
      invalid_arg "Shard_router.create: drain_batch must be positive";
    if max_clients <= 0 then
      invalid_arg "Shard_router.create: max_clients must be positive";
    {
      shards =
        Array.init shards (fun i ->
            {
              (* +2: the shard's updater domain and one setup/monitoring
                 registration beyond the client handles. *)
              table = D.create ~max_threads:(max_clients + 2) ();
              queue = Mod_queue.create ~id:i ~depth:queue_depth ();
            });
      drain_batch;
      stop = Atomic.make false;
      updaters = [];
    }

  let n_shards t = Array.length t.shards

  (* splitmix64 finalizer: full-avalanche hash so dense key ranges spread
     evenly instead of striping by [key mod shards]. Masked to 62 bits:
     [Int64.to_int] keeps the low 63 bits as a signed value, so anything
     wider could come out negative and index out of bounds. *)
  let hash_key k =
    let open Int64 in
    let z = mul (of_int k) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    to_int (logand (logxor z (shift_right_logical z 31)) 0x3FFF_FFFF_FFFF_FFFFL)

  let shard_of t k = hash_key k mod Array.length t.shards

  (* Updater: splice a batch out of the queue, apply it to the tree with
     no queue lock held, resolve completions, repeat. Runs until [stop]
     is set AND the queue is empty, so shutdown drains the backlog and
     every accepted completion resolves. *)
  let updater t shard =
    let h = D.register shard.table in
    let idle = Backoff.create () in
    let rec loop () =
      let batch = Mod_queue.drain shard.queue ~max:t.drain_batch in
      if Array.length batch = 0 then begin
        if not (Atomic.get t.stop) then begin
          Backoff.once idle;
          loop ()
        end
      end
      else begin
        Backoff.reset idle;
        Array.iter
          (fun (e : Mod_queue.entry) ->
            let result =
              match e.op with
              | Mod_queue.Insert (k, v) -> D.insert h k v
              | Mod_queue.Delete k -> D.delete h k
            in
            match e.completion with
            | Some c -> Mod_queue.complete c result
            | None -> ())
          batch;
        loop ()
      end
    in
    Fun.protect ~finally:(fun () -> D.unregister h) loop

  let start t =
    if t.updaters = [] && not (Atomic.get t.stop) then
      t.updaters <-
        Array.to_list
          (Array.map (fun s -> Domain.spawn (fun () -> updater t s)) t.shards)

  let shutdown t =
    Atomic.set t.stop true;
    let ds = t.updaters in
    t.updaters <- [];
    List.iter Domain.join ds

  let register t =
    let n = Array.length t.shards in
    let handles = Array.make n None in
    (try
       Array.iteri
         (fun i s -> handles.(i) <- Some (D.register s.table))
         t.shards
     with e ->
       (* Don't leak the registrations that did succeed. *)
       Array.iter (function Some h -> D.unregister h | None -> ()) handles;
       raise e);
    {
      router = t;
      handles = Array.map (function Some h -> h | None -> assert false) handles;
    }

  let unregister h = Array.iter D.unregister h.handles

  let get h k = D.contains h.handles.(shard_of h.router k) k
  let mem h k = D.mem h.handles.(shard_of h.router k) k

  let enqueue h k ?completion op =
    let t = h.router in
    (* Refuse once shutdown begins: an operation accepted after the
       updaters exit would never be applied (and its completion would
       never resolve). *)
    if Atomic.get t.stop then false
    else Mod_queue.try_enqueue t.shards.(shard_of t k).queue ?completion op

  let insert h k v = enqueue h k (Mod_queue.Insert (k, v))
  let delete h k = enqueue h k (Mod_queue.Delete k)

  let insert_wait h k v =
    let c = Mod_queue.completion () in
    if enqueue h k ~completion:c (Mod_queue.Insert (k, v)) then
      Some (Mod_queue.await c)
    else None

  let delete_wait h k =
    let c = Mod_queue.completion () in
    if enqueue h k ~completion:c (Mod_queue.Delete k) then
      Some (Mod_queue.await c)
    else None

  let load h k v = D.insert h.handles.(shard_of h.router k) k v

  let queue_stats t = Array.map (fun s -> Mod_queue.stats s.queue) t.shards

  let drained t =
    Array.fold_left
      (fun acc s -> acc + (Mod_queue.stats s.queue).Mod_queue.drained)
      0 t.shards

  let size t = Array.fold_left (fun acc s -> acc + D.size s.table) 0 t.shards
  let check t = Array.iter (fun s -> D.check s.table) t.shards

  let to_list t =
    List.sort compare
      (Array.fold_left (fun acc s -> D.to_list s.table @ acc) [] t.shards)
end
