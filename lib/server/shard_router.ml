module Backoff = Repro_sync.Backoff
module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats
module Fault = Repro_fault.Fault
module Stall = Repro_rcu.Stall

(* A sharded dictionary service: keys are hashed across [shards]
   independent trees, each with its own RCU domain registration, lock
   classes and bounded modification queue drained by a dedicated updater
   domain. Reads go straight to the owning shard's tree (wait-free, as in
   the paper); writes are enqueued and applied asynchronously, so a
   client never pays a grace period — the updater does, and while one
   shard's updater is blocked in synchronize the other shards' updaters
   keep draining. See SERVING.md.

   Each updater runs under a [Supervisor]: a crash (injected or real)
   unregisters the dead domain's RCU slot, and the restarted incarnation
   adopts both the surviving queue and the crashed one's
   spliced-but-unapplied batch ([pending] below), so an accepted write
   is never lost across a crash. Admission is gated by a per-shard
   [Health] state machine. See ROBUSTNESS.md, "Serving-layer failure
   model". *)

(* Typed admission rejects, outside the functor so every instantiation
   shares one type (and so [Failed] does not collide with
   [Health.Failed] inside [Make]). *)
type reject =
  | Full (* queue at capacity — retryable backpressure *)
  | Overload (* shed by a Degraded shard — retryable *)
  | Breaker_open (* shard's circuit breaker rejected — retryable *)
  | Expired (* the write's deadline elapsed before application *)
  | Failed (* shard past its restart budget — permanent *)
  | Shutdown (* router stopping — permanent *)

let reject_name = function
  | Full -> "full"
  | Overload -> "overload"
  | Breaker_open -> "breaker_open"
  | Expired -> "expired"
  | Failed -> "failed"
  | Shutdown -> "shutdown"

(* The resolved result of a waited write, distinguishing a normal
   application from one replayed by a replacement updater after a crash
   (whose boolean is only "as of the last application" — see
   [Mod_queue.status]). *)
type write_result = Applied of bool | Replayed of bool

let write_result_value = function Applied r -> r | Replayed r -> r

(* One report per shard that could not shut down cleanly. *)
type drain_report = {
  shard : int;
  queue_depth : int; (* entries still queued when the deadline expired *)
  last_drain_ns : int; (* timestamp of the shard's last drain call *)
  crashes : int; (* updater crashes over the shard's lifetime *)
  lost : int; (* accepted writes purged (completions aborted) *)
  wedged : bool; (* updater never exited — domain abandoned unjoined *)
}

type shutdown_result = Drained | Forced of drain_report list

let fp_crash = Fault.register "server.updater.crash"

module Make (D : Repro_dict.Dict.DICT) = struct
  type shard = {
    table : D.t;
    queue : Mod_queue.t;
    health : Health.t;
    breaker : Breaker.t;
    crash_flag : bool Atomic.t;
    (* The batch most recently spliced out of [queue], and how far into
       it application has progressed. Written only by the shard's single
       live updater incarnation (handoff across a crash is ordered by
       the supervisor's [Domain.spawn] chain); atomics rather than plain
       mutables because the forced-shutdown path must read them while a
       wedged, abandoned updater may still be running — it aborts the
       remainder's completions race-free, relying on [Mod_queue.abort]'s
       CAS to lose against any concurrent completion. *)
    pending : Mod_queue.entry array Atomic.t;
    pending_at : int Atomic.t;
  }

  type t = {
    shards : shard array;
    drain_batch : int;
    policy : Supervisor.policy;
    seed : int64;
    mutate_forget_backlog : bool;
    mutate_skip_deadline : bool;
    stop : bool Atomic.t;
    abandon : bool Atomic.t; (* forced shutdown: exit without draining *)
    mutable supervisors : Supervisor.t array; (* [||] until start *)
    mutable shutdown_result : shutdown_result option;
  }

  type handle = { router : t; handles : D.handle array }

  (* Decorrelate per-shard deterministic streams (breaker jitter,
     supervisor backoff jitter) from one run seed: golden-ratio salt per
     shard, as in [hash_key]. *)
  let shard_seed seed i =
    Int64.logxor seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)

  let create ?(shards = 4) ?(queue_depth = 1024) ?(drain_batch = 64)
      ?(max_clients = 64) ?(supervisor = Supervisor.default_policy)
      ?high_frac ?low_frac ?pressure_high ?pressure_low ?breaker
      ?(seed = 42L) ?(mutate_forget_backlog = false)
      ?(mutate_breaker_never_opens = false) ?(mutate_skip_deadline = false)
      () =
    if shards <= 0 then
      invalid_arg "Shard_router.create: shards must be positive";
    if drain_batch <= 0 then
      invalid_arg "Shard_router.create: drain_batch must be positive";
    if max_clients <= 0 then
      invalid_arg "Shard_router.create: max_clients must be positive";
    {
      shards =
        Array.init shards (fun i ->
            {
              (* +2: the shard's updater domain and one setup/monitoring
                 registration beyond the client handles. *)
              table = D.create ~max_threads:(max_clients + 2) ();
              queue = Mod_queue.create ~id:i ~depth:queue_depth ();
              health =
                Health.create ?high_frac ?low_frac ?pressure_high
                  ?pressure_low ~shard:i ~capacity:queue_depth ();
              breaker =
                Breaker.create ?config:breaker ~seed:(shard_seed seed i)
                  ~mutate_never_open:mutate_breaker_never_opens ~shard:i ();
              crash_flag = Atomic.make false;
              pending = Atomic.make [||];
              pending_at = Atomic.make 0;
            });
      drain_batch;
      policy = supervisor;
      seed;
      mutate_forget_backlog;
      mutate_skip_deadline;
      stop = Atomic.make false;
      abandon = Atomic.make false;
      supervisors = [||];
      shutdown_result = None;
    }

  let n_shards t = Array.length t.shards

  (* splitmix64 finalizer: full-avalanche hash so dense key ranges spread
     evenly instead of striping by [key mod shards]. Masked to 62 bits:
     [Int64.to_int] keeps the low 63 bits as a signed value, so anything
     wider could come out negative and index out of bounds. *)
  let hash_key k =
    let open Int64 in
    let z = mul (of_int k) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    to_int (logand (logxor z (shift_right_logical z 31)) 0x3FFF_FFFF_FFFF_FFFFL)

  let shard_of t k = hash_key k mod Array.length t.shards

  (* Crash injection, consumed only at entry-application boundaries: a
     [crash_updater] request armed while the shard idles fires on the
     first entry of the next batch — always mid-adoption-window, with
     the full remainder in [pending] — which is what makes the chaos
     mutation deterministic. The named fault point covers the
     probabilistic path (REPRO_FAULTS=server.updater.crash=RATE:raise). *)
  let maybe_crash shard =
    if
      Atomic.get shard.crash_flag
      && Atomic.compare_and_set shard.crash_flag true false
    then raise (Fault.Injected (Fault.name fp_crash));
    if Fault.enabled () then Fault.inject fp_crash

  (* Apply one entry through a registered handle and resolve its
     completion — shared by the updater and the shutdown sweep. *)
  let apply_with h (e : Mod_queue.entry) =
    let result =
      match e.op with
      | Mod_queue.Insert (k, v) -> D.insert h k v
      | Mod_queue.Delete k -> D.delete h k
    in
    match e.completion with
    | Some c -> Mod_queue.complete c result
    | None -> ()

  (* A shard whose grace periods stalled within this window reports full
     reclamation pressure regardless of bag depth: the backlog is about
     to grow and nothing will shrink it until the stalled reader moves. *)
  let stall_recent_ns = 200_000_000

  (* Throttle for the updater's pressure poll: walking the reclaimer's
     producer bags on every idle spin would be pure overhead. *)
  let pressure_poll_ns = 1_000_000

  (* Updater body, one incarnation: adopt whatever batch the previous
     incarnation left unapplied, then splice-apply-resolve until [stop]
     (drain first) or [abandon] (exit at the next batch boundary). An
     exception — injected or real — escapes to the supervisor after
     [Fun.protect] frees the RCU slot; [pending]/[pending_at] then hold
     exactly the unapplied remainder for the successor.

     The drain checks each entry's deadline *before* applying it: under
     overload the queue holds work whose clients have already given up,
     and burning updater time on it is the head-of-line death spiral —
     the backlog only ever gets older, so every write waits behind dead
     ones and expires in turn. Expired entries resolve [Expired] without
     touching the tree. Each applied/expired entry also feeds the
     shard's breaker, and the updater is the shard's reclamation-
     pressure observer: it polls the table's retired-backlog pressure
     (maxed to 1.0 while grace periods are recently stalled) into
     [Health] and the [reclaim_pressure] gauge. *)
  let updater t shard () =
    let h = D.register shard.table in
    let idle = Backoff.create () in
    let last_pressure_poll = ref 0 in
    let observe_pressure () =
      let now = Metrics.now_ns () in
      if now - !last_pressure_poll > pressure_poll_ns then begin
        last_pressure_poll := now;
        let p = D.reclaim_pressure shard.table in
        let p =
          if Stall.recently_stalled ~within_ns:stall_recent_ns then
            Float.max p 1.0
          else p
        in
        Health.observe_reclaim_pressure shard.health p;
        if Metrics.enabled () then
          Stats.Timer.record Metrics.reclaim_pressure (Metrics.slot ())
            (int_of_float (p *. 1000.0))
      end
    in
    let apply_entry ~replayed (e : Mod_queue.entry) =
      maybe_crash shard;
      let now = Metrics.now_ns () in
      if
        e.deadline_ns > 0 && now > e.deadline_ns
        && not t.mutate_skip_deadline
      then begin
        (* Expired in the queue: complete as [Expired] without applying.
           The client (if waiting) unblocks with the honest verdict, and
           the expiry feeds the breaker window — a queue full of dead
           work is exactly the overload the breaker exists to shed. *)
        (match e.completion with Some c -> Mod_queue.expire c | None -> ());
        if Metrics.enabled () then
          Stats.incr Metrics.writes_expired (Metrics.slot ());
        Breaker.on_failure shard.breaker ~now_ns:now ~probe:e.probe
      end
      else begin
        let result =
          match e.op with
          | Mod_queue.Insert (k, v) -> D.insert h k v
          | Mod_queue.Delete k -> D.delete h k
        in
        (match e.completion with
        | Some c ->
            if replayed then Mod_queue.complete_replayed c result
            else Mod_queue.complete c result
        | None -> ());
        Breaker.on_success shard.breaker ~now_ns:(Metrics.now_ns ())
          ~probe:e.probe
      end
    in
    let apply_pending ~replayed =
      let arr = Atomic.get shard.pending in
      while Atomic.get shard.pending_at < Array.length arr do
        let i = Atomic.get shard.pending_at in
        apply_entry ~replayed arr.(i);
        (* Advance only after the entry applied: a crash between the
           apply and this store re-applies that entry, which is
           idempotent at the dictionary level (insert/delete of the same
           key converge) — the loss direction is the one that matters.
           A replayed entry resolves [Replayed], the honest status: the
           predecessor may already have applied it, so its boolean is
           only "as of the last application". The completion store sits
           before the cursor advance, so a crash after it re-delivers
           the original result ([complete] never overwrites). *)
        Atomic.set shard.pending_at (i + 1)
      done;
      (* Reset [pending] before the cursor: a concurrent forced-shutdown
         reader then sees either the empty array (nothing to abort) or
         the old one with an honest cursor — never applied entries
         counted as lost. *)
      Atomic.set shard.pending [||];
      Atomic.set shard.pending_at 0
    in
    let run () =
      (* A non-empty [pending] here is a crashed predecessor's adopted
         batch: every remaining entry resolves [Replayed]. *)
      apply_pending ~replayed:true;
      let rec loop () =
        if not (Atomic.get t.abandon) then begin
          let batch = Mod_queue.drain shard.queue ~max:t.drain_batch in
          if Array.length batch = 0 then begin
            if not (Atomic.get t.stop) then begin
              observe_pressure ();
              Backoff.once idle;
              loop ()
            end
          end
          else begin
            Backoff.reset idle;
            Atomic.set shard.pending_at 0;
            Atomic.set shard.pending batch;
            apply_pending ~replayed:false;
            Health.observe_depth shard.health (Mod_queue.length shard.queue);
            observe_pressure ();
            loop ()
          end
        end
      in
      loop ()
    in
    Fun.protect ~finally:(fun () -> D.unregister h) run

  (* Abort the completions of an unapplied pending remainder; returns the
     number of accepted writes counted lost. Callable from the updater
     chain itself ([on_failed]), after joining it (forced shutdown), or —
     with [~clear:false] — against a wedged, abandoned updater: the
     atomics make the snapshot race-free and [Mod_queue.abort]'s CAS
     loses to any completion the wedged domain still delivers, so a
     waiter gets exactly one of {result, aborted}. Only the owning chain
     may clear the fields; clearing under a live updater would fight its
     cursor. *)
  let abort_pending ?(clear = true) shard =
    let arr = Atomic.get shard.pending in
    let at = Atomic.get shard.pending_at in
    let lost = ref 0 in
    for i = at to Array.length arr - 1 do
      (match arr.(i).Mod_queue.completion with
      | Some c -> Mod_queue.abort c
      | None -> ());
      incr lost
    done;
    if clear then begin
      Atomic.set shard.pending [||];
      Atomic.set shard.pending_at 0
    end;
    if !lost > 0 && Metrics.enabled () then
      Stats.add Metrics.writes_lost (Metrics.slot ()) !lost;
    !lost

  (* Drain-and-apply whatever remains in a shard's queue once its
     updater chain has exited (graceful shutdown) or never existed
     (shutdown before [start]). The queue is closed by then, so the
     backlog is finite and this domain is the shard's only writer:
     [Drained] keeps its meaning — every accepted write applied, every
     completion resolved — even for a producer that won admission
     against the closing shutdown and landed its entry after the
     updater's final empty drain. *)
  let sweep_stragglers t s =
    if Mod_queue.length s.queue > 0 then begin
      let h = D.register s.table in
      Fun.protect
        ~finally:(fun () -> D.unregister h)
        (fun () ->
          let rec go () =
            let batch = Mod_queue.drain s.queue ~max:t.drain_batch in
            if Array.length batch > 0 then begin
              Array.iter (apply_with h) batch;
              go ()
            end
          in
          go ())
    end

  let start t =
    if Array.length t.supervisors = 0 && not (Atomic.get t.stop) then
      t.supervisors <-
        Array.mapi
          (fun i s ->
            Supervisor.start ~policy:t.policy
              ~jitter_seed:(shard_seed t.seed (i + Array.length t.shards))
              ~on_crash:(fun _ ->
                (* Every crash trips the breaker: the replacement updater
                   must be re-offered load on the breaker's probe
                   schedule, not swamped the instant it adopts the
                   backlog. *)
                Breaker.on_crash s.breaker ~now_ns:(Metrics.now_ns ()))
              ?forget_backlog:
                (if t.mutate_forget_backlog then
                   Some
                     (fun () ->
                       Atomic.set s.pending [||];
                       Atomic.set s.pending_at 0)
                 else None)
              ~shard:i
              ~abort:(fun () -> Atomic.get t.abandon)
              ~on_failed:(fun _ ->
                if Health.mark_failed s.health then begin
                  (* Close before purging: [close] wins the queue lock,
                     so a producer that passed the Health check before
                     the [Failed] CAS either landed its entry — swept by
                     this purge — or gets [Admit_closed] and reports
                     [Failed]. No entry can be stranded in a queue no
                     updater will ever drain again, so no waiter spins
                     forever. *)
                  Mod_queue.close s.queue;
                  ignore (Mod_queue.purge s.queue);
                  ignore (abort_pending s)
                end)
              (updater t s))
          t.shards

  let crash_updater t i = Atomic.set t.shards.(i).crash_flag true

  let forced_grace_ns = 100_000_000

  let shutdown ?(deadline_ns = 5_000_000_000) t =
    match t.shutdown_result with
    | Some r -> r
    | None ->
        Atomic.set t.stop true;
        (* Close admission under each queue lock: a producer that raced
           past the [stop] check has either landed its entry before the
           close — applied by the sweep below — or gets [Admit_closed]
           and reports [Shutdown]. Updater drains are unaffected. *)
        Array.iter (fun s -> Mod_queue.close s.queue) t.shards;
        let sups = t.supervisors in
        let r =
          if Array.length sups = 0 then begin
            (* Never started: apply the pre-start backlog here rather
               than stranding its waiters in queues no updater will ever
               drain. *)
            Array.iter (fun s -> sweep_stragglers t s) t.shards;
            Drained
          end
          else begin
            let finished_all () = Array.for_all Supervisor.finished sups in
            let wait_until limit =
              let rec go () =
                finished_all ()
                || Metrics.now_ns () < limit
                   && begin
                        Unix.sleepf 0.0005;
                        go ()
                      end
              in
              go ()
            in
            if wait_until (Metrics.now_ns () + deadline_ns) then begin
              Array.iter Supervisor.join sups;
              Array.iter (fun s -> sweep_stragglers t s) t.shards;
              Drained
            end
            else begin
              (* Deadline blown: force-stop. Updaters exit at their next
                 batch boundary instead of draining; give them a short
                 grace so "slow" is distinguished from "wedged", then
                 purge what remains and report per shard. A wedged
                 updater's spliced-but-unapplied batch is aborted too —
                 [Mod_queue.abort] only wins a completion's CAS from
                 Pending, so each waiter either got its real result from
                 the wedged domain or unblocks with a typed reject here,
                 and the batch counts into [lost]. The abandoned domain
                 may still apply some of those entries later, so after
                 [Forced] the tree contents are best-effort
                 (ROBUSTNESS.md, "Serving-layer failure model"). *)
              Atomic.set t.abandon true;
              ignore (wait_until (Metrics.now_ns () + forced_grace_ns));
              let reports = ref [] in
              Array.iteri
                (fun i sup ->
                  let s = t.shards.(i) in
                  let fin = Supervisor.finished sup in
                  if fin then Supervisor.join sup;
                  let depth = Mod_queue.length s.queue in
                  let lost_q = Mod_queue.purge s.queue in
                  let lost_p = abort_pending ~clear:fin s in
                  let lost = lost_q + lost_p in
                  if (not fin) || lost > 0 then begin
                    let rep =
                      {
                        shard = i;
                        queue_depth = depth;
                        last_drain_ns = Mod_queue.last_drain_ns s.queue;
                        crashes = Supervisor.crashes sup;
                        lost;
                        wedged = not fin;
                      }
                    in
                    Printf.eprintf
                      "repro_server: forced shutdown: shard %d%s: depth %d, \
                       %d accepted writes lost, last drain %.1f ms ago, %d \
                       crashes\n\
                       %!"
                      i
                      (if fin then "" else " (updater wedged, abandoned)")
                      depth lost
                      (float_of_int (Metrics.now_ns () - rep.last_drain_ns)
                      /. 1e6)
                      rep.crashes;
                    reports := rep :: !reports
                  end)
                sups;
              match List.rev !reports with [] -> Drained | rs -> Forced rs
            end
          end
        in
        (* Stop each table's background reclaimer (a no-op for tables
           without one): pending call_rcu unlinks and frees run before we
           return, so [check]/[size] after shutdown see a quiescent tree.
           After [Forced] an abandoned updater may still retire nodes —
           the stopped reclaimer routes those to inline frees. *)
        Array.iter (fun s -> D.shutdown s.table) t.shards;
        t.shutdown_result <- Some r;
        r

  let register t =
    let n = Array.length t.shards in
    let handles = Array.make n None in
    (try
       Array.iteri
         (fun i s -> handles.(i) <- Some (D.register s.table))
         t.shards
     with e ->
       (* Don't leak the registrations that did succeed. *)
       Array.iter (function Some h -> D.unregister h | None -> ()) handles;
       raise e);
    {
      router = t;
      handles = Array.map (function Some h -> h | None -> assert false) handles;
    }

  let unregister h = Array.iter D.unregister h.handles

  let get h k = D.contains h.handles.(shard_of h.router k) k
  let mem h k = D.mem h.handles.(shard_of h.router k) k

  (* Admission: shutdown and failure are permanent rejects; a write
     already past its deadline is refused dead-on-arrival; the breaker
     gates what is left (its probe verdicts ride into the queue on the
     entry); a Degraded shard sheds fire-and-forget writes (nobody is
     waiting — dropping them is what lets the queue drain) while
     admitting waited ones (their waiter is the natural backpressure)
     and probes (the breaker cannot close without them); the queue
     bound rejects the rest. Sheds, full-queue rejects and expiries all
     feed the breaker's failure window — persistent per-request
     backpressure is what converts into an open breaker. The health
     observations happen on this path because the producers are the
     domains still alive when an updater wedges. *)
  let enqueue h k ~waited ?completion ?(deadline_ns = 0) op =
    let t = h.router in
    if Atomic.get t.stop then Error Shutdown
    else begin
      let s = t.shards.(shard_of t k) in
      let depth = Mod_queue.length s.queue in
      Health.observe_depth s.health depth;
      let now = Metrics.now_ns () in
      let thr = Mod_queue.stall_threshold_ns () in
      if thr > 0 && depth > 0 && now - Mod_queue.last_drain_ns s.queue > thr
      then Health.note_stall s.health;
      match Health.state s.health with
      | Health.Failed -> Error Failed
      | (Health.Degraded | Health.Healthy) as hs ->
          if deadline_ns > 0 && now > deadline_ns then begin
            (* Dead on arrival — the deadline passed before admission
               (typically backed-off retries under overload). Refusing
               here is free; admitting would make the updater drain
               work no one wants. *)
            if Metrics.enabled () then
              Stats.incr Metrics.writes_expired (Metrics.slot ());
            Breaker.on_failure s.breaker ~now_ns:now ~probe:false;
            Error Expired
          end
          else begin
            match Breaker.admit s.breaker ~now_ns:now with
            | Breaker.Reject -> Error Breaker_open
            | verdict -> (
                let probe = verdict = Breaker.Probe in
                if hs = Health.Degraded && (not waited) && not probe then begin
                  if Metrics.enabled () then
                    Stats.incr Metrics.writes_shed (Metrics.slot ());
                  Breaker.on_failure s.breaker ~now_ns:now ~probe:false;
                  Error Overload
                end
                else
                  match
                    Mod_queue.enqueue s.queue ?completion ~deadline_ns ~probe
                      op
                  with
                  | Mod_queue.Admitted -> Ok ()
                  | Mod_queue.Admit_full ->
                      Breaker.on_failure s.breaker ~now_ns:now ~probe;
                      Error Full
                  | Mod_queue.Admit_closed ->
                      (* A failure path or shutdown closed the queue after
                         our stop/Health checks passed ([close] is taken
                         under the queue lock, so this entry provably did
                         not land). Report the cause, not backpressure. A
                         claimed probe slot is released as a failure so it
                         cannot leak the Half_open episode. *)
                      if probe then
                        Breaker.on_failure s.breaker ~now_ns:now ~probe;
                      if Health.state s.health = Health.Failed then
                        Error Failed
                      else Error Shutdown)
          end
    end

  let insert h ?deadline_ns k v =
    enqueue h k ~waited:false ?deadline_ns (Mod_queue.Insert (k, v))

  let delete h ?deadline_ns k =
    enqueue h k ~waited:false ?deadline_ns (Mod_queue.Delete k)

  (* A waited write whose completion aborts was accepted and then
     discarded by a failure path; report it as the reject that caused
     the discard. *)
  let aborted_reject h k =
    let s = h.router.shards.(shard_of h.router k) in
    if Health.state s.health = Health.Failed then Error Failed
    else Error Shutdown

  let await_result h k c =
    match Mod_queue.await c with
    | Mod_queue.Done r -> Ok (Applied r)
    | Mod_queue.Replayed r -> Ok (Replayed r)
    | Mod_queue.Expired -> Error Expired
    | Mod_queue.Aborted | Mod_queue.Pending -> aborted_reject h k

  let insert_wait h ?deadline_ns k v =
    let c = Mod_queue.completion () in
    match
      enqueue h k ~waited:true ~completion:c ?deadline_ns
        (Mod_queue.Insert (k, v))
    with
    | Error _ as e -> e
    | Ok () -> await_result h k c

  let delete_wait h ?deadline_ns k =
    let c = Mod_queue.completion () in
    match
      enqueue h k ~waited:true ~completion:c ?deadline_ns (Mod_queue.Delete k)
    with
    | Error _ as e -> e
    | Ok () -> await_result h k c

  let load h k v = D.insert h.handles.(shard_of h.router k) k v

  let queue_stats t = Array.map (fun s -> Mod_queue.stats s.queue) t.shards

  let health t = Array.map (fun s -> Health.state s.health) t.shards

  let breaker_states t = Array.map (fun s -> Breaker.state s.breaker) t.shards

  let breaker_trips t =
    Array.fold_left (fun acc s -> acc + Breaker.trips s.breaker) 0 t.shards

  let breaker_rejects t =
    Array.fold_left (fun acc s -> acc + Breaker.rejects s.breaker) 0 t.shards

  let reclaim_pressures t =
    Array.map (fun s -> D.reclaim_pressure s.table) t.shards

  let pressure_latched t =
    Array.map (fun s -> Health.pressure_latched s.health) t.shards

  (* Chaos seam: hold an RCU read section open on shard [i]'s table for
     the duration of [f] — from the calling domain, via a throwaway
     registration. While [f] runs, no grace period on that shard can
     complete, so its retired backlog only grows: the stall-reader chaos
     scenario drives admission control with exactly the pathology the
     reclamation-pressure path exists for. *)
  let with_shard_reader t i f =
    let s = t.shards.(i) in
    let h = D.register s.table in
    Fun.protect
      ~finally:(fun () -> D.unregister h)
      (fun () -> D.with_reader h f)

  let crashes t = Array.map Supervisor.crashes t.supervisors

  let restarts t = Array.map Supervisor.restarts t.supervisors

  let restart_latencies_ns t =
    Array.fold_left
      (fun acc sup -> Supervisor.restart_latencies_ns sup @ acc)
      [] t.supervisors

  let drained t =
    Array.fold_left
      (fun acc s -> acc + (Mod_queue.stats s.queue).Mod_queue.drained)
      0 t.shards

  let size t = Array.fold_left (fun acc s -> acc + D.size s.table) 0 t.shards
  let check t = Array.iter (fun s -> D.check s.table) t.shards

  let to_list t =
    List.sort compare
      (Array.fold_left (fun acc s -> D.to_list s.table @ acc) [] t.shards)
end
