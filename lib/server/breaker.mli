(** Per-shard circuit breaker.

    The missing piece between backpressure and supervision: backpressure
    ({!Mod_queue.admit.Admit_full}, Degraded shedding) tells {e this}
    request to go away, supervision ({!Supervisor}) restarts a crashed
    updater — but nothing stops every retrying client from re-swamping a
    shard the instant it comes back. The breaker is that re-offer
    schedule: it watches a rolling window of write outcomes and, when the
    failure rate (rejects, deadline expiries) crosses a threshold — or
    the updater crashes outright — trips [Open] and rejects every write
    for a jittered, doubling interval. After the interval it admits a
    bounded number of {e probe} writes ([Half_open]); if they all apply,
    it closes and the backoff resets, if any fails it re-opens with the
    next (doubled) interval. See ROBUSTNESS.md, "Graceful degradation".

    Reads are never gated — RCU readers cost the shard nothing and are
    always safe.

    The state machine is pure with respect to time: every transition
    takes the clock as an explicit [now_ns] argument, so tests drive it
    through trip/probe/close cycles without sleeping. All state is
    atomic; every method is safe from any domain. Trip intervals are
    jittered by a deterministic stream derived from [seed] (see
    {!create}), so a seeded run reproduces its breaker schedule exactly
    while distinct shards decorrelate.

    Observability: trips count [breaker_open], rejected admissions count
    [breaker_rejects] ([Repro_sync.Metrics]); every state change traces
    [Breaker_state] with [arg = shard * 4 + state] (0 closed, 1 open,
    2 half-open — the same packing as [Shard_state]). *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half_open"] — for reports and logs. *)

val state_code : state -> int
(** The [Breaker_state] trace packing: 0, 1, 2. *)

(** The admission verdict. *)
type verdict =
  | Admit  (** breaker closed — proceed normally *)
  | Probe
      (** breaker half-open and this caller claimed one of the bounded
          probe slots: proceed, and report the outcome with
          [~probe:true] so the breaker can decide close vs re-open *)
  | Reject
      (** breaker open (or half-open with all probe slots claimed) —
          shed the write without touching the queue; retryable from the
          client's point of view *)

type config = {
  window_ns : int;  (** rolling outcome-window width *)
  min_samples : int;
      (** outcomes required in the window before the rate can trip —
          keeps one early failure on an idle shard from opening it *)
  failure_pct : int;  (** trip when failures reach this % of the window *)
  open_base_ns : int;  (** nominal first open interval *)
  open_max_ns : int;  (** cap on the doubling open interval *)
  probes : int;
      (** probe writes admitted per [Half_open] episode; all must
          succeed to close *)
}

val default_config : config
(** 1 s window, 20 samples, 50% failure, 10 ms base open interval capped
    at 2 s, 3 probes. *)

type t

val create :
  ?config:config ->
  ?seed:int64 ->
  ?mutate_never_open:bool ->
  shard:int ->
  unit ->
  t
(** A fresh breaker in [Closed]. [seed] (default 42) drives the open-
    interval jitter — give each shard [logxor run_seed shard_salt] so
    shards decorrelate while the run stays reproducible.
    [mutate_never_open] is a {e seeded defect} for the chaos audit
    (citrus_tool mutants --chaos): tripping becomes a no-op, so the
    breaker never opens and overload feedback is silently lost.
    @raise Invalid_argument on a non-positive window, sample, probe or
      interval parameter, a [failure_pct] outside [1, 100], or
      [open_max_ns < open_base_ns]. *)

val admit : t -> now_ns:int -> verdict
(** Admission check, one atomic load on the [Closed] fast path. [Open]
    past its interval transitions to [Half_open] and the caller
    contends for a probe slot. *)

val on_success : t -> now_ns:int -> probe:bool -> unit
(** A write applied. Probe successes accumulate toward closing
    ([config.probes] of them close the breaker and reset the backoff);
    ordinary successes feed the rolling window. *)

val on_failure : t -> now_ns:int -> probe:bool -> unit
(** A write failed (queue-full reject, deadline expiry). A probe failure
    re-opens immediately with the next (doubled) interval. An ordinary
    failure feeds the window and trips the breaker when the windowed
    failure rate crosses [config.failure_pct] with at least
    [config.min_samples] outcomes — evaluated only while [Closed], so
    stragglers from before a trip cannot re-open a probing breaker. *)

val on_crash : t -> now_ns:int -> unit
(** The shard's updater crashed: trip unconditionally — the shard is
    restarting and must be re-offered load gradually regardless of what
    the window says. *)

(** {2 Monitoring} — racy snapshots, safe from any domain. *)

val state : t -> state
val shard : t -> int
val config : t -> config

val trips : t -> int
(** Lifetime Open transitions. *)

val rejects : t -> int
(** Admissions rejected (breaker open or probe slots exhausted). *)

val open_until_ns : t -> int
(** Monotonic-clock deadline of the current (or last) open interval. *)

val window : t -> int * int
(** Current rolling window as [(successes, failures)]. *)

val probes_in_flight : t -> int
(** Probe slots claimed but not yet succeeded in this [Half_open]
    episode. *)
