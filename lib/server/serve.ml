module W = Repro_workload.Workload
module Open_loop = Repro_workload.Open_loop
module Latency = Repro_workload.Latency
module Json_report = Repro_workload.Json_report
module Json = Repro_obs.Json
module Metrics = Repro_sync.Metrics
module Rng = Repro_sync.Rng

type write_mode = Async | Wait

let write_mode_name = function Async -> "async" | Wait -> "wait"

type cfg = {
  shards : int;
  clients : int;
  queue_depth : int;
  drain_batch : int;
  rate : float;
  duration : float;
  mix : W.mix;
  key_range : int;
  key_dist : W.key_dist;
  prefill_fraction : float;
  write_mode : write_mode;
  seed : int64;
  max_retries : int;
  retry_base_ns : int;
  deadline_ns : int;
  shutdown_deadline_ns : int;
}

let cfg ?(shards = 4) ?(clients = 4) ?(queue_depth = 1024) ?(drain_batch = 64)
    ?(rate = 20_000.0) ?(duration = 1.0) ?(mix = W.contains_50)
    ?(key_range = 16_384) ?(key_dist = W.Uniform_keys)
    ?(prefill_fraction = 0.5) ?(write_mode = Wait) ?(seed = 42L)
    ?(max_retries = 0) ?(retry_base_ns = 100_000) ?(deadline_ns = 0)
    ?(shutdown_deadline_ns = 5_000_000_000) () =
  if prefill_fraction < 0.0 || prefill_fraction > 1.0 then
    invalid_arg "Serve.cfg: prefill_fraction must be in [0, 1]";
  {
    shards;
    clients;
    queue_depth;
    drain_batch;
    rate;
    duration;
    mix;
    key_range;
    key_dist;
    prefill_fraction;
    write_mode;
    seed;
    max_retries;
    retry_base_ns;
    deadline_ns;
    shutdown_deadline_ns;
  }

type result = {
  structure : string;
  cfg : cfg;
  load : Open_loop.result;
  drained : int;
  drained_total : int;
  write_throughput : float;
  queues : Mod_queue.stats array;
  rejects_by_reason : (Shard_router.reject * int) list;
  health : Health.state array;
  breakers : Breaker.state array;
  breaker_trips : int;
  breaker_rejects : int;
  shutdown : Shard_router.shutdown_result;
  final_size : int;
  metrics : (string * float) list;
}

let all_rejects =
  [
    Shard_router.Full;
    Shard_router.Overload;
    Shard_router.Breaker_open;
    Shard_router.Expired;
    Shard_router.Failed;
    Shard_router.Shutdown;
  ]

let n_rejects = List.length all_rejects

let reject_index = function
  | Shard_router.Full -> 0
  | Shard_router.Overload -> 1
  | Shard_router.Breaker_open -> 2
  | Shard_router.Expired -> 3
  | Shard_router.Failed -> 4
  | Shard_router.Shutdown -> 5

let run ?(observe = false) (dict : (module Repro_dict.Dict.DICT)) (c : cfg) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  let t =
    S.create ~shards:c.shards ~queue_depth:c.queue_depth
      ~drain_batch:c.drain_batch ~max_clients:(c.clients + 2) ~seed:c.seed ()
  in
  (* Prefill directly (queue-bypassing) before the updaters start, as the
     closed-loop runner does before its clock starts. *)
  let h0 = S.register t in
  let master = Rng.create c.seed in
  let target = int_of_float (float_of_int c.key_range *. c.prefill_fraction) in
  let filled = ref 0 in
  while !filled < target do
    let k = Rng.int master c.key_range in
    if S.load h0 k k then incr filled
  done;
  S.unregister h0;
  if observe then Metrics.reset ();
  S.start t;
  let spec =
    Open_loop.spec ~clients:c.clients ~rate:c.rate ~duration:c.duration
      ~mix:c.mix ~key_range:c.key_range ~key_dist:c.key_dist ~seed:c.seed
      ~max_retries:c.max_retries ~retry_base_ns:c.retry_base_ns
      ~deadline_ns:c.deadline_ns ()
  in
  (* Per-client reject tallies, indexed by [reject_index]; each sub-array
     is written only by its owning client domain and read after
     [Open_loop.run] joins them. *)
  let reject_tab = Array.init c.clients (fun _ -> Array.make n_rejects 0) in
  let make_client i =
    let h = S.register t in
    let rejects = reject_tab.(i) in
    (* Full/Overload/Breaker_open are backpressure that clears — the
       queue drains, the breaker re-offers — so they map to retryable
       [Busy]; Expired is the service's honest deadline verdict —
       terminal, retrying known-late work only feeds the spiral;
       Failed/Shutdown never heal — terminal drops. *)
    let write_outcome = function
      | Ok applied -> Open_loop.Applied applied
      | Error r -> (
          rejects.(reject_index r) <- rejects.(reject_index r) + 1;
          match r with
          | Shard_router.Full | Shard_router.Overload
          | Shard_router.Breaker_open ->
              Open_loop.Busy
          | Shard_router.Expired -> Open_loop.Expired
          | Shard_router.Failed | Shard_router.Shutdown -> Open_loop.Dropped)
    in
    let waited r = Result.map Shard_router.write_result_value r in
    {
      Open_loop.run_op =
        (fun op k deadline ->
          match op with
          | W.Contains -> Open_loop.Applied (S.mem h k)
          | W.Insert -> (
              match c.write_mode with
              | Wait ->
                  write_outcome (waited (S.insert_wait h ~deadline_ns:deadline k k))
              | Async ->
                  write_outcome
                    (Result.map
                       (fun () -> true)
                       (S.insert h ~deadline_ns:deadline k k)))
          | W.Delete -> (
              match c.write_mode with
              | Wait ->
                  write_outcome (waited (S.delete_wait h ~deadline_ns:deadline k))
              | Async ->
                  write_outcome
                    (Result.map
                       (fun () -> true)
                       (S.delete h ~deadline_ns:deadline k))));
      finish = (fun () -> S.unregister h);
    }
  in
  let load = Open_loop.run spec make_client in
  (* Window counters before shutdown: the backlog drained during
     [shutdown] belongs to [drained_total], not the measured interval. *)
  let drained = S.drained t in
  let metrics = if observe then Metrics.snapshot () else [] in
  let breakers = S.breaker_states t in
  let breaker_trips = S.breaker_trips t in
  let breaker_rejects = S.breaker_rejects t in
  let shutdown = S.shutdown ~deadline_ns:c.shutdown_deadline_ns t in
  let drained_total = S.drained t in
  let final_size = S.size t in
  S.check t;
  let rejects_by_reason =
    List.filter_map
      (fun r ->
        let n =
          Array.fold_left
            (fun acc per_client -> acc + per_client.(reject_index r))
            0 reject_tab
        in
        if n = 0 then None else Some (r, n))
      all_rejects
  in
  {
    structure = D.name;
    cfg = c;
    load;
    drained;
    drained_total;
    write_throughput = float_of_int drained /. load.Open_loop.wall;
    queues = S.queue_stats t;
    rejects_by_reason;
    health = S.health t;
    breakers;
    breaker_trips;
    breaker_rejects;
    shutdown;
    final_size;
    metrics;
  }

let point_json (r : result) =
  let c = r.cfg in
  let l = r.load in
  Json.Obj
    [
      ("structure", Json.String r.structure);
      ("shards", Json.Int c.shards);
      ("clients", Json.Int c.clients);
      ("queue_depth", Json.Int c.queue_depth);
      ("drain_batch", Json.Int c.drain_batch);
      ("write_mode", Json.String (write_mode_name c.write_mode));
      ("offered_load_ops_per_s", Json.Float c.rate);
      ("duration_s", Json.Float c.duration);
      ("key_range", Json.Int c.key_range);
      ("max_retries", Json.Int c.max_retries);
      ("retry_base_ns", Json.Int c.retry_base_ns);
      ("deadline_ns", Json.Int c.deadline_ns);
      ( "mix",
        Json.Obj
          [
            ("contains_pct", Json.Int c.mix.W.contains_pct);
            ("insert_pct", Json.Int c.mix.W.insert_pct);
            ("delete_pct", Json.Int c.mix.W.delete_pct);
          ] );
      ("wall_s", Json.Float l.Open_loop.wall);
      ( "ops",
        Json.Obj
          [
            ("issued", Json.Int l.Open_loop.issued);
            ("completed", Json.Int l.Open_loop.completed);
            ("dropped", Json.Int l.Open_loop.dropped);
            ("retries", Json.Int l.Open_loop.retries);
            ("deadline_exhausted", Json.Int l.Open_loop.exhausted);
            ("expired", Json.Int l.Open_loop.expired);
            ("drained", Json.Int r.drained);
            ("drained_total", Json.Int r.drained_total);
          ] );
      ( "rejects",
        Json.Obj
          (List.map
             (fun (rej, n) -> (Shard_router.reject_name rej, Json.Int n))
             r.rejects_by_reason) );
      ("throughput_ops_per_s", Json.Float l.Open_loop.achieved);
      ("write_throughput_ops_per_s", Json.Float r.write_throughput);
      ("max_lag_ns", Json.Int l.Open_loop.max_lag_ns);
      ( "latency_ns",
        Json.Obj
          (List.map
             (fun (op, h) ->
               ( Json_report.op_name op,
                 Json_report.summary_json (Latency.summarize h) ))
             l.Open_loop.latency) );
      ( "dropped_by_op",
        Json.Obj
          (List.map
             (fun (op, n) -> (Json_report.op_name op, Json.Int n))
             l.Open_loop.dropped_by_op) );
      ( "queues",
        Json.List
          (Array.to_list
             (Array.map
                (fun (q : Mod_queue.stats) ->
                  Json.Obj
                    [
                      ("enqueued", Json.Int q.Mod_queue.enqueued);
                      ("dropped", Json.Int q.Mod_queue.dropped);
                      ("drained", Json.Int q.Mod_queue.drained);
                      ("purged", Json.Int q.Mod_queue.purged);
                      ("max_depth", Json.Int q.Mod_queue.max_depth);
                      ("depth", Json.Int q.Mod_queue.depth);
                    ])
                r.queues)) );
      ( "health",
        Json.List
          (Array.to_list
             (Array.map
                (fun s -> Json.String (Health.state_name s))
                r.health)) );
      ( "breakers",
        Json.Obj
          [
            ("trips", Json.Int r.breaker_trips);
            ("rejects", Json.Int r.breaker_rejects);
            ( "final_states",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun s -> Json.String (Breaker.state_name s))
                      r.breakers)) );
          ] );
      ( "shutdown",
        Json.Obj
          (( "mode",
             Json.String
               (match r.shutdown with
               | Shard_router.Drained -> "drained"
               | Shard_router.Forced _ -> "forced") )
          ::
          (match r.shutdown with
          | Shard_router.Drained -> []
          | Shard_router.Forced reports ->
              [
                ( "forced_shards",
                  Json.List
                    (List.map
                       (fun (d : Shard_router.drain_report) ->
                         Json.Obj
                           [
                             ("shard", Json.Int d.Shard_router.shard);
                             ( "queue_depth",
                               Json.Int d.Shard_router.queue_depth );
                             ("lost", Json.Int d.Shard_router.lost);
                             ("crashes", Json.Int d.Shard_router.crashes);
                             ("wedged", Json.Bool d.Shard_router.wedged);
                           ])
                       reports) );
              ])) );
      ("final_size", Json.Int r.final_size);
      ("metrics", Repro_obs.Export.metrics_json r.metrics);
    ]

let report ?(name = "serve: open-loop load on the sharded service") results =
  Json.Obj
    [
      ("schema_version", Json.Int Json_report.schema_version);
      ("generator", Json.String "citrus-repro serve");
      ("generated_at_unix", Json.Float (Unix.gettimeofday ()));
      ( "experiments",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String name);
                ("points", Json.List (List.map point_json results));
              ];
          ] );
    ]
