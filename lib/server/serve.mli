(** Open-loop serving harness over the sharded service.

    Stands up a {!Shard_router} over a chosen dictionary, prefills it,
    drives it with {!Repro_workload.Open_loop} Poisson arrivals (reads
    direct, writes through the modification queues), and reports
    scheduled-arrival-to-completion latency percentiles per operation
    plus the drop/retry/queue-depth accounting — the measurement behind
    EXPERIMENTS.md's "serve" entry and [BENCH_serve.json]. Backing for
    [citrus_tool serve] and [bench/main.exe -- serve]. See SERVING.md.

    Client-side resilience: typed rejects from the router are mapped to
    the open-loop retry machinery — [Full]/[Overload]/[Breaker_open]
    are retryable ([Busy], retried with jittered exponential backoff
    under the per-op deadline budget), [Expired] is the service's
    deadline verdict (terminal [Expired] — retrying known-late work
    only feeds the spiral), [Failed]/[Shutdown] terminal ([Dropped]) —
    and every reject is also counted by reason in the report. When
    [cfg.deadline_ns] is set, each operation's absolute deadline is
    propagated through the router into the queue entry, so the
    updater's drain expires dead work instead of applying it. *)

type write_mode =
  | Async
      (** fire-and-forget: a write completes when accepted into the
          queue; its latency is the enqueue cost *)
  | Wait
      (** each write spins on a completion cell until applied; its
          latency includes the full queueing delay *)

val write_mode_name : write_mode -> string
(** ["async"] / ["wait"] — the report's [write_mode] field. *)

type cfg = {
  shards : int;
  clients : int;
  queue_depth : int;
  drain_batch : int;
  rate : float;  (** aggregate offered load, ops/s *)
  duration : float;  (** seconds of timed execution *)
  mix : Repro_workload.Workload.mix;
  key_range : int;
  key_dist : Repro_workload.Workload.key_dist;
  prefill_fraction : float;
  write_mode : write_mode;
  seed : int64;
  max_retries : int;  (** per-op retry budget on retryable rejects *)
  retry_base_ns : int;  (** first-retry backoff (doubles, jittered) *)
  deadline_ns : int;  (** per-op completion budget; 0 = none *)
  shutdown_deadline_ns : int;  (** drain budget before force-stop *)
}

val cfg :
  ?shards:int ->
  ?clients:int ->
  ?queue_depth:int ->
  ?drain_batch:int ->
  ?rate:float ->
  ?duration:float ->
  ?mix:Repro_workload.Workload.mix ->
  ?key_range:int ->
  ?key_dist:Repro_workload.Workload.key_dist ->
  ?prefill_fraction:float ->
  ?write_mode:write_mode ->
  ?seed:int64 ->
  ?max_retries:int ->
  ?retry_base_ns:int ->
  ?deadline_ns:int ->
  ?shutdown_deadline_ns:int ->
  unit ->
  cfg
(** Defaults: 4 shards, 4 clients, queue depth 1024, drain batch 64,
    20k ops/s offered, 1s, 50% contains mix, key range 16 384, uniform
    keys, 0.5 prefill, [Wait] writes, seed 42, no retries (base 100 µs
    when enabled), no per-op deadline, 5 s shutdown drain deadline.
    Range checks are deferred to [Shard_router.create]/[Open_loop.spec]
    except
    @raise Invalid_argument if [prefill_fraction] is outside [0, 1]. *)

type result = {
  structure : string;  (** [D.name] of the dictionary served *)
  cfg : cfg;
  load : Repro_workload.Open_loop.result;
      (** client-side view (latency, drops, retries, exhausted
          deadlines) *)
  drained : int;
      (** writes applied within the measured window — the aggregate
          write-throughput numerator *)
  drained_total : int;
      (** including the backlog drained during shutdown *)
  write_throughput : float;  (** [drained /. load.wall], ops/s *)
  queues : Mod_queue.stats array;  (** per-shard, index = shard *)
  rejects_by_reason : (Shard_router.reject * int) list;
      (** typed write rejects summed across clients; omits reasons that
          never occurred *)
  health : Health.state array;  (** per-shard, after shutdown *)
  breakers : Breaker.state array;
      (** per-shard circuit-breaker states at the end of the measured
          window (before shutdown) *)
  breaker_trips : int;  (** total breaker Open transitions, all shards *)
  breaker_rejects : int;  (** total breaker-rejected writes, all shards *)
  shutdown : Shard_router.shutdown_result;
  final_size : int;  (** total keys across shards after shutdown *)
  metrics : (string * float) list;
      (** [Metrics.snapshot] of the measured window ([observe] only) *)
}

val run : ?observe:bool -> (module Repro_dict.Dict.DICT) -> cfg -> result
(** Build the router, prefill (queue-bypassing, before the updaters
    start), start the supervised updaters, run the open-loop load,
    snapshot counters, shut down under [cfg.shutdown_deadline_ns],
    verify every shard's invariants ([D.check]). [observe] resets and
    snapshots the global metrics around the measured window. Uses
    [cfg.clients + 1] domains beyond the callers' plus one updater per
    shard (more transiently across crash restarts).
    @raise Repro_sync.Registry.Full if a client cannot register. *)

val point_json : result -> Repro_obs.Json.t
(** One schema-v1 data point: sharding/queue/retry configuration, op
    counts (issued/completed/dropped/retries/deadline_exhausted/
    expired/drained), rejects by reason, achieved and write throughput,
    per-op [latency_ns] percentile summaries and drop counts, per-shard
    queue statistics and health states, breaker trip/reject totals and
    final states, the shutdown mode (with per-shard forced-drain
    reports when forced), and the metrics snapshot. *)

val report : ?name:string -> result list -> Repro_obs.Json.t
(** A full schema-v1 document with the given points as one experiment —
    the shape of [BENCH_serve.json] (see OBSERVABILITY.md). *)
