module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats
module Trace = Repro_sync.Trace
module Rng = Repro_sync.Rng

(* Per-shard circuit breaker: Closed -> Open on a rolling-window failure
   rate (rejects, deadline expiries) or an updater crash; Open rejects
   everything for a jittered, doubling interval; Half_open admits a
   bounded number of probe writes whose outcomes decide between closing
   and re-opening. The point is the *re-offer schedule*: a shard that
   just crash-restarted or shed its backlog is offered load gradually
   instead of being instantly re-swamped by every retrying client at
   once (the jitter decorrelates the breakers across shards, the
   doubling backs a persistently sick shard off harder).

   All transitions are CAS on one atomic state int so the admission path
   pays one load when Closed; time is an explicit [now_ns] argument so
   the state machine is testable without sleeping. The clock-carrying
   design also means racy window resets only ever lose samples, never
   corrupt the state: every field is either a monotone counter or
   rewritten wholesale at a transition. *)

type state = Closed | Open | Half_open

type verdict = Admit | Probe | Reject

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

let state_code = function Closed -> 0 | Open -> 1 | Half_open -> 2

type config = {
  window_ns : int;
  min_samples : int;
  failure_pct : int;
  open_base_ns : int;
  open_max_ns : int;
  probes : int;
}

let default_config =
  {
    window_ns = 1_000_000_000;
    min_samples = 20;
    failure_pct = 50;
    open_base_ns = 10_000_000;
    open_max_ns = 2_000_000_000;
    probes = 3;
  }

type t = {
  shard : int;
  cfg : config;
  seed : int64;
  never_open : bool; (* seeded mutation: [trip] is a no-op *)
  s : int Atomic.t; (* 0 closed, 1 open, 2 half_open *)
  win_start : int Atomic.t;
  win_succ : int Atomic.t;
  win_fail : int Atomic.t;
  open_until : int Atomic.t;
  consec : int Atomic.t; (* trips since the last close (backoff doubling) *)
  trips_ : int Atomic.t; (* lifetime trips *)
  rejects_ : int Atomic.t;
  probes_started : int Atomic.t;
  probe_succ : int Atomic.t;
}

let create ?(config = default_config) ?(seed = 42L)
    ?(mutate_never_open = false) ~shard () =
  if config.window_ns <= 0 then
    invalid_arg "Breaker.create: window_ns must be positive";
  if config.min_samples <= 0 then
    invalid_arg "Breaker.create: min_samples must be positive";
  if config.failure_pct < 1 || config.failure_pct > 100 then
    invalid_arg "Breaker.create: failure_pct must be in [1, 100]";
  if config.open_base_ns <= 0 || config.open_max_ns < config.open_base_ns then
    invalid_arg "Breaker.create: want 0 < open_base_ns <= open_max_ns";
  if config.probes <= 0 then
    invalid_arg "Breaker.create: probes must be positive";
  {
    shard;
    cfg = config;
    seed;
    never_open = mutate_never_open;
    s = Atomic.make 0;
    win_start = Atomic.make 0;
    win_succ = Atomic.make 0;
    win_fail = Atomic.make 0;
    open_until = Atomic.make 0;
    consec = Atomic.make 0;
    trips_ = Atomic.make 0;
    rejects_ = Atomic.make 0;
    probes_started = Atomic.make 0;
    probe_succ = Atomic.make 0;
  }

let shard t = t.shard
let config t = t.cfg

let state t =
  match Atomic.get t.s with 0 -> Closed | 1 -> Open | _ -> Half_open

let trips t = Atomic.get t.trips_
let rejects t = Atomic.get t.rejects_
let open_until_ns t = Atomic.get t.open_until
let window t = (Atomic.get t.win_succ, Atomic.get t.win_fail)
let probes_in_flight t = Atomic.get t.probes_started - Atomic.get t.probe_succ

let trace t code = Trace.record Trace.Breaker_state ((t.shard * 4) + code)

(* Rotate the rolling window when it has aged out. The CAS elects one
   rotator; the counter stores behind it can race a concurrent recorder
   and drop that sample — losing one sample from a fresh window is
   harmless (the window exists to estimate a rate). *)
let rotate t ~now_ns =
  let ws = Atomic.get t.win_start in
  if now_ns - ws > t.cfg.window_ns then
    if Atomic.compare_and_set t.win_start ws now_ns then begin
      Atomic.set t.win_succ 0;
      Atomic.set t.win_fail 0
    end

(* Trip to Open from Closed or Half_open. The open interval doubles with
   each consecutive trip (reset on close) up to the cap, jittered into
   [0.5, 1.0) of nominal by a splitmix64 stream derived from the
   breaker's seed and the trip ordinal — deterministic under a seeded
   run, decorrelated across shards (different seeds) and across trips.
   [open_until] is published before the state CAS so no admitter can
   observe Open with a stale deadline. *)
let rec trip t ~now_ns =
  if not t.never_open then
    match Atomic.get t.s with
    | 1 -> ()
    | c ->
        let n = Atomic.get t.consec + 1 in
        let nominal =
          min t.cfg.open_max_ns (t.cfg.open_base_ns lsl min 20 (n - 1))
        in
        let rng = Rng.create (Int64.logxor t.seed (Int64.of_int n)) in
        let jittered =
          int_of_float (float_of_int nominal *. (0.5 +. (0.5 *. Rng.float rng)))
        in
        Atomic.set t.open_until (now_ns + jittered);
        if Atomic.compare_and_set t.s c 1 then begin
          Atomic.incr t.consec;
          Atomic.incr t.trips_;
          Atomic.set t.win_succ 0;
          Atomic.set t.win_fail 0;
          Atomic.set t.probes_started 0;
          Atomic.set t.probe_succ 0;
          if Metrics.enabled () then
            Stats.incr Metrics.breaker_open (Metrics.slot ());
          trace t 1
        end
        else trip t ~now_ns

let close t =
  if Atomic.compare_and_set t.s 2 0 then begin
    Atomic.set t.consec 0;
    Atomic.set t.win_succ 0;
    Atomic.set t.win_fail 0;
    trace t 0
  end

let reject_counted t =
  Atomic.incr t.rejects_;
  if Metrics.enabled () then
    Stats.incr Metrics.breaker_rejects (Metrics.slot ());
  Reject

(* Probe admission: at most [cfg.probes] probe operations per Half_open
   episode, claimed by CAS so concurrent admitters cannot over-issue. *)
let rec claim_probe t =
  let n = Atomic.get t.probes_started in
  if n >= t.cfg.probes then reject_counted t
  else if Atomic.compare_and_set t.probes_started n (n + 1) then Probe
  else claim_probe t

let rec admit t ~now_ns =
  match Atomic.get t.s with
  | 0 ->
      rotate t ~now_ns;
      Admit
  | 1 ->
      if now_ns < Atomic.get t.open_until then reject_counted t
      else if Atomic.compare_and_set t.s 1 2 then begin
        Atomic.set t.probes_started 0;
        Atomic.set t.probe_succ 0;
        trace t 2;
        claim_probe t
      end
      else admit t ~now_ns
  | _ -> claim_probe t

let on_success t ~now_ns ~probe =
  if probe then begin
    let n = 1 + Atomic.fetch_and_add t.probe_succ 1 in
    if n >= t.cfg.probes then close t
  end
  else begin
    rotate t ~now_ns;
    Atomic.incr t.win_succ
  end

let on_failure t ~now_ns ~probe =
  if probe then
    (* A failed probe is conclusive: re-open immediately, with the next
       (doubled) interval. *)
    trip t ~now_ns
  else begin
    rotate t ~now_ns;
    Atomic.incr t.win_fail;
    (* Trip on the window rate only from Closed: Half_open outcomes are
       decided by the probes, and stragglers from before the trip (old
       queued entries expiring) must not re-open a breaker already
       probing its way closed. *)
    if Atomic.get t.s = 0 then begin
      let f = Atomic.get t.win_fail in
      let s = Atomic.get t.win_succ in
      if s + f >= t.cfg.min_samples && f * 100 >= t.cfg.failure_pct * (s + f)
      then trip t ~now_ns
    end
  end

let on_crash t ~now_ns =
  (* A crash is conclusive regardless of the window: the shard is
     restarting and must be re-offered load gradually. *)
  trip t ~now_ns
