module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats
module Trace = Repro_sync.Trace

(* Per-shard health state machine, driving the serving layer's overload
   control. The state is one atomic int so the enqueue path pays one load
   to consult it; transitions are CAS so concurrent observers (producers
   seeing depth, the supervisor marking failure) agree on a single
   history, and [Failed] is terminal — a shard past its restart budget
   never silently resurrects. *)

type state = Healthy | Degraded | Failed

type t = {
  shard : int;
  s : int Atomic.t; (* 0 = healthy, 1 = degraded, 2 = failed *)
  high : int; (* queue depth at/above which Healthy -> Degraded *)
  low : int; (* queue depth at/below which Degraded -> Healthy *)
  p_high : float; (* reclaim pressure at/above which the latch sets *)
  p_low : float; (* reclaim pressure at/below which the latch clears *)
  pressure_latch : bool Atomic.t;
      (* Reclamation fell behind (retired backlog near its watermark or
         a grace-period stall): degrade, and keep the shard from healing
         on queue depth alone — a shed queue drains fast precisely
         because writes are being shed, while the retired backlog only
         shrinks once readers let grace periods complete. *)
}

let code = function Healthy -> 0 | Degraded -> 1 | Failed -> 2

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Failed -> "failed"

let of_code = function 0 -> Healthy | 1 -> Degraded | _ -> Failed

let create ?(high_frac = 0.75) ?(low_frac = 0.25) ?(pressure_high = 0.75)
    ?(pressure_low = 0.25) ~shard ~capacity () =
  if capacity <= 0 then invalid_arg "Health.create: capacity must be positive";
  if
    (not (Float.is_finite high_frac))
    || (not (Float.is_finite low_frac))
    || low_frac < 0.0 || high_frac <= low_frac || high_frac > 1.0
  then invalid_arg "Health.create: want 0 <= low_frac < high_frac <= 1";
  if
    (not (Float.is_finite pressure_high))
    || (not (Float.is_finite pressure_low))
    || pressure_low < 0.0
    || pressure_high <= pressure_low
  then invalid_arg "Health.create: want 0 <= pressure_low < pressure_high";
  {
    shard;
    s = Atomic.make 0;
    (* max 1: a tiny queue still degrades before it is full. *)
    high = max 1 (int_of_float (high_frac *. float_of_int capacity));
    low = int_of_float (low_frac *. float_of_int capacity);
    p_high = pressure_high;
    p_low = pressure_low;
    pressure_latch = Atomic.make false;
  }

let shard t = t.shard
let state t = of_code (Atomic.get t.s)
let high_watermark t = t.high
let low_watermark t = t.low

let trace_change t st = Trace.record Trace.Shard_state ((t.shard * 4) + code st)

let observe_depth t depth =
  (* Hysteresis: degrade at the high watermark, recover only once the
     queue has drained down to the low one — a queue hovering at the
     boundary does not flap between shedding and admitting. A set
     pressure latch blocks the recovery arm: shed queues drain quickly
     (that is what shedding is for), but the shard is only actually
     well once reclamation has caught up too. *)
  match Atomic.get t.s with
  | 0 ->
      if depth >= t.high && Atomic.compare_and_set t.s 0 1 then
        trace_change t Degraded
  | 1 ->
      if
        depth <= t.low
        && (not (Atomic.get t.pressure_latch))
        && Atomic.compare_and_set t.s 1 0
      then trace_change t Healthy
  | _ -> ()

let pressure_latched t = Atomic.get t.pressure_latch

let observe_reclaim_pressure t p =
  (* Hysteretic like depth: latch at p_high, clear at p_low. Setting the
     latch also degrades a healthy shard — reclamation debt is overload
     even with an empty queue, because every applied write adds to a
     backlog nothing is draining. Clearing only releases the latch;
     healing stays depth-driven so the two signals compose. *)
  if p >= t.p_high then begin
    if Atomic.compare_and_set t.pressure_latch false true then
      if Atomic.get t.s = 0 && Atomic.compare_and_set t.s 0 1 then
        trace_change t Degraded
  end
  else if p <= t.p_low then ignore (Atomic.compare_and_set t.pressure_latch true false)

let note_stall t =
  (* A stale queue is overload even at modest depth: the updater is not
     keeping up (wedged, crashed, or grace-period-bound). Recovery is
     depth-driven like any other degradation — once the (restarted)
     updater drains to the low watermark, [observe_depth] heals it. *)
  if Atomic.get t.s = 0 && Atomic.compare_and_set t.s 0 1 then
    trace_change t Degraded

let mark_failed t =
  let rec go () =
    match Atomic.get t.s with
    | 2 -> false
    | c ->
        if Atomic.compare_and_set t.s c 2 then true
        else go ()
  in
  if go () then begin
    trace_change t Failed;
    if Metrics.enabled () then
      Stats.incr Metrics.shards_failed (Metrics.slot ());
    true
  end
  else false
