(** Bounded multi-producer single-consumer modification queue.

    The write path of the serving layer: client domains enqueue [Insert]/
    [Delete] operations, one updater domain per shard drains them in FIFO
    order and applies them to the shard's Citrus tree (see
    {!Shard_router} and SERVING.md). The queue is a spinlock-guarded ring
    — the critical section is a handful of stores, the lock carries the
    lockdep class ["server.mod_queue"] so the leaf-lock protocol (never
    held across tree operations) is machine-checked, and the bound is the
    backpressure mechanism: a full queue rejects the enqueue rather than
    buffering unbounded overload.

    Observability: accepted enqueues count [mod_enqueues] and trace
    [Mod_enqueue], rejections count [mod_drops], drains count
    [mod_drained] / trace [Mod_drain] and sample each operation's
    enqueue-to-drain delay into [mod_queue_wait_ns]
    ([Repro_sync.Metrics]). Fault points ["server.enqueue"] and
    ["server.drain"] fire before the lock is taken
    ([Repro_fault.Fault]). *)

type op = Insert of int * int | Delete of int

(** {2 Completions}

    A write-once cell a client may attach to an operation to wait for its
    result — the synchronous option on the asynchronous write path. *)

type completion

val completion : unit -> completion
(** A fresh pending cell. *)

val complete : completion -> bool -> unit
(** Resolve the cell with the operation's result (updater side). *)

val peek : completion -> bool option
(** [None] while pending, [Some result] once applied. *)

val await : completion -> bool
(** Spin (with {!Repro_sync.Backoff}, so the wait escalates to naps and
    never starves the updater on one core) until the cell resolves;
    returns the operation's result. Only terminates if an updater is
    draining the queue the operation was accepted into. *)

(** {2 The queue} *)

type entry = {
  op : op;
  completion : completion option;
  enqueued_at : int;  (** [Metrics.now_ns] at enqueue; 0 if metrics off *)
}

type t

type stats = {
  enqueued : int;  (** operations accepted *)
  dropped : int;  (** enqueue attempts rejected (queue full) *)
  drained : int;  (** operations spliced out by {!drain} *)
  max_depth : int;  (** high-water mark of the queue length *)
  depth : int;  (** the configured capacity *)
}

val create : ?id:int -> depth:int -> unit -> t
(** A queue holding at most [depth] pending operations. [id] labels
    [Mod_enqueue] trace events (the owning shard's index).
    @raise Invalid_argument if [depth <= 0]. *)

val id : t -> int
val depth : t -> int

val length : t -> int
(** Current queue length — racy snapshot, for monitoring only. *)

val try_enqueue : t -> ?completion:completion -> op -> bool
(** Append an operation; [false] (and the operation is NOT queued, any
    [completion] never resolves) if the queue is full. Safe from any
    domain. *)

val drain : t -> max:int -> entry array
(** Splice out up to [max] operations in FIFO order. The lock is released
    before returning: the caller applies the entries lock-free with
    respect to this queue, so queue locks never nest with tree-node
    locks. Single consumer: FIFO application order is only meaningful
    with one draining domain. Empty array = queue empty.
    @raise Invalid_argument if [max <= 0]. *)

val stats : t -> stats
(** Racy counter snapshot; exact once producers and the consumer have
    stopped. *)
