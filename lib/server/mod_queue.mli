(** Bounded multi-producer single-consumer modification queue.

    The write path of the serving layer: client domains enqueue [Insert]/
    [Delete] operations, one updater domain per shard drains them in FIFO
    order and applies them to the shard's Citrus tree (see
    {!Shard_router} and SERVING.md). The queue is a spinlock-guarded ring
    — the critical section is a handful of stores, the lock carries the
    lockdep class ["server.mod_queue"] so the leaf-lock protocol (never
    held across tree operations) is machine-checked, and the bound is the
    backpressure mechanism: a full queue rejects the enqueue rather than
    buffering unbounded overload.

    Observability: accepted enqueues count [mod_enqueues] and trace
    [Mod_enqueue], rejections count [mod_drops], drains count
    [mod_drained] / trace [Mod_drain] and sample each operation's
    enqueue-to-drain delay into [mod_queue_wait_ns], purged entries count
    [writes_lost] ([Repro_sync.Metrics]). Fault points ["server.enqueue"]
    and ["server.drain"] fire before the lock is taken, and
    ["server.drain.stall"] fires on the drain side for wedging the
    updater with a [delay_ns] action ([Repro_fault.Fault]). *)

type op = Insert of int * int | Delete of int

(** {2 Completions}

    A write-once cell a client may attach to an operation to wait for its
    result — the synchronous option on the asynchronous write path. *)

type completion

type status =
  | Pending  (** accepted, not yet applied *)
  | Done of bool  (** applied; the operation's result *)
  | Aborted
      (** the accepted write was discarded before application — its shard
          failed past the restart budget or shutdown was forced past the
          drain deadline (see {!purge}) *)
  | Expired
      (** the write's end-to-end deadline elapsed before the updater
          applied it; the drain discarded it unapplied (see {!drain} and
          SERVING.md, "Deadline propagation") *)
  | Replayed of bool
      (** applied by a replacement updater replaying a crashed
          predecessor's adopted batch; the bool is the operation's
          observed result {e on replay} — an [Insert] the dead updater
          may already have applied legitimately reports [false] here, so
          the honest answer is "applied at least once, result as of the
          last application" (see SERVING.md, "Crash recovery") *)

val completion : unit -> completion
(** A fresh pending cell. *)

val complete : completion -> bool -> unit
(** Resolve the cell with the operation's result (updater side). No-op if
    the cell was already resolved. *)

val abort : completion -> unit
(** Resolve the cell as abandoned (purge side). No-op if the cell was
    already completed — a resolved result is never un-resolved. *)

val expire : completion -> unit
(** Resolve the cell as deadline-expired (drain side). No-op if already
    resolved. *)

val complete_replayed : completion -> bool -> unit
(** Resolve the cell as applied-by-replay (replacement-updater side),
    carrying the result of the replayed application. No-op if already
    resolved. *)

val peek : completion -> status

val await : completion -> status
(** Spin (with {!Repro_sync.Backoff}, so the wait escalates to naps and
    never starves the updater on one core) until the cell resolves;
    returns the resolved status (never [Pending]). Only terminates if an
    updater is draining — or a purge abandons — the queue the operation
    was accepted into. *)

(** {2 The queue} *)

type entry = {
  op : op;
  completion : completion option;
  enqueued_at : int;  (** [Metrics.now_ns] at enqueue; 0 if metrics off *)
  deadline_ns : int;
      (** absolute completion deadline on the monotonic clock, carried
          from the client through the router; 0 = none. The updater's
          drain checks it {e before} applying and resolves expired
          entries with {!status.Expired} instead of burning time on
          abandoned work. *)
  probe : bool;
      (** the entry was admitted as a {!Breaker} probe ([Half_open]);
          the updater reports its outcome with [~probe:true] so the
          breaker can decide close vs re-open *)
}

type t

type stats = {
  enqueued : int;  (** operations accepted *)
  dropped : int;  (** enqueue attempts rejected (queue full) *)
  drained : int;  (** operations spliced out by {!drain} *)
  purged : int;  (** accepted operations discarded by {!purge} *)
  max_depth : int;  (** high-water mark of the queue length *)
  depth : int;  (** the configured capacity *)
}

val create : ?id:int -> depth:int -> unit -> t
(** A queue holding at most [depth] pending operations. [id] labels
    [Mod_enqueue] trace events (the owning shard's index).
    @raise Invalid_argument if [depth <= 0]. *)

val id : t -> int
val depth : t -> int

val length : t -> int
(** Current queue length — racy snapshot, for monitoring only. *)

(** Admission verdicts, distinguishing the two rejection causes so the
    router can type them ([Full] backpressure vs [Failed]/[Shutdown]). *)
type admit =
  | Admitted  (** appended; will be drained in FIFO order *)
  | Admit_full
      (** at capacity — retryable backpressure; counts [mod_drops] *)
  | Admit_closed
      (** {!close} was called — permanent; nothing was queued and an
          attached [completion] never resolves *)

val enqueue :
  t -> ?completion:completion -> ?deadline_ns:int -> ?probe:bool -> op -> admit
(** Append an operation, optionally carrying its absolute deadline
    (default 0 = none) and its breaker-probe flag (default false). Safe
    from any domain. Runs the staleness watchdog check when armed (see
    {!set_stall_threshold_ns}). On [Admit_full]/[Admit_closed] the
    operation is NOT queued and any [completion] never resolves. *)

val try_enqueue :
  t -> ?completion:completion -> ?deadline_ns:int -> ?probe:bool -> op -> bool
(** [enqueue t ?completion ?deadline_ns ?probe op = Admitted] — for
    callers indifferent to the rejection cause. *)

val close : t -> unit
(** Permanently stop admitting entries ({!enqueue} returns
    [Admit_closed]). Taken under the queue lock: once [close] returns,
    every concurrent enqueue has either already landed its entry —
    visible to a subsequent {!drain} or {!purge} — or is rejected, so a
    purge (or drain-to-empty) after [close] provably strands nothing.
    Draining is unaffected; idempotent. This is the admission barrier of
    the failure paths: a shard marked [Failed] and router shutdown both
    [close] before sweeping the queue. *)

val is_closed : t -> bool

val drain : t -> max:int -> entry array
(** Splice out up to [max] operations in FIFO order. The lock is released
    before returning: the caller applies the entries lock-free with
    respect to this queue, so queue locks never nest with tree-node
    locks. Single consumer: FIFO application order is only meaningful
    with one draining domain. Empty array = queue empty. Every call —
    including on an empty queue — feeds the staleness watchdog and
    records the calling domain as the queue's drainer.
    @raise Invalid_argument if [max <= 0]. *)

val purge : t -> int
(** Discard every queued entry, aborting attached completions so their
    waiters unblock with [None]; returns the number of entries lost
    (counted into the [writes_lost] metric). The loud last resort of the
    failure paths: a shard marked [Failed] past its restart budget, or a
    shutdown forced past its drain deadline. Single-consumer like
    {!drain} — call only when no updater is draining the queue. *)

val stats : t -> stats
(** Counter snapshot taken under the queue lock, so the fields are
    mutually consistent even while producers and the consumer run. *)

(** {2 Staleness watchdog}

    The grace-period stall-watchdog pattern ([Repro_rcu.Stall]) ported to
    the write path: when armed, producers check on each enqueue whether
    the queue is non-empty and no {!drain} has run for more than the
    threshold — a wedged, crashed, or grace-period-bound updater — and
    emit one structured warning per threshold window, naming the shard
    and the updater domain, counting [mod_queue_stalls] and tracing
    [Mod_stall]. *)

val set_stall_threshold_ns : int -> unit
(** Arm the watchdog process-wide ([0] disarms, the default). The check
    costs producers one atomic load when disarmed.
    @raise Invalid_argument if negative. *)

val stall_threshold_ns : unit -> int

val check_stall : t -> unit
(** Run one watchdog check explicitly (the same check enqueues run) —
    for pollers that want stall detection on an otherwise idle queue. *)

val last_drain_ns : t -> int
(** Timestamp of the most recent {!drain} call (creation time if none). *)

val drainer_domain : t -> int
(** Domain id of the last draining domain; [-1] before the first drain. *)
