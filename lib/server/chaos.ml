module W = Repro_workload.Workload
module Open_loop = Repro_workload.Open_loop
module Json = Repro_obs.Json
module Metrics = Repro_sync.Metrics
module Fault = Repro_fault.Fault
module Reclaimer = Repro_rcu.Reclaimer

(* Chaos harness for the serving layer: drive the sharded service with
   open-loop load while repeatedly crashing updater domains (and
   optionally stalling drains or parking an RCU reader mid-section),
   then prove end to end that no accepted write was lost.

   The proof is a per-client ledger. Each client owns a private slice of
   the key space (key = harness_key * clients + client_index), so every
   key is written by exactly one client, in program order; the router
   sends a key to one shard FIFO queue; therefore the last *accepted*
   write per key fully determines its expected final state, with no
   cross-client races to reason about. The ledger records exactly the
   accepted ([Ok]) writes — rejected ones (backpressure under crash
   load) are excluded by construction. After a [Drained] shutdown the
   union of ledgers must equal the tree contents, key for key. *)

type cfg = {
  shards : int;
  clients : int;
  queue_depth : int;
  drain_batch : int;
  rate : float;
  duration : float;
  key_range : int;
  contains_pct : int;
  crashes_per_shard : int;
  stall_rate : float;
  stall_delay_ns : int;
  stall_reader : bool;
  stall_reader_watermark : int;
  recovery_p99_bound_ns : int;
  seed : int64;
}

let cfg ?(shards = 4) ?(clients = 4) ?(queue_depth = 1024) ?(drain_batch = 64)
    ?(rate = 20_000.0) ?(duration = 2.0) ?(key_range = 8_192)
    ?(contains_pct = 20) ?(crashes_per_shard = 3) ?(stall_rate = 0.0)
    ?(stall_delay_ns = 2_000_000) ?(stall_reader = false)
    ?(stall_reader_watermark = 128) ?(recovery_p99_bound_ns = 250_000_000)
    ?(seed = 42L) () =
  if crashes_per_shard < 0 then
    invalid_arg "Chaos.cfg: crashes_per_shard must be >= 0";
  if contains_pct < 0 || contains_pct > 100 then
    invalid_arg "Chaos.cfg: contains_pct must be in [0, 100]";
  if stall_rate < 0.0 || stall_rate > 1.0 then
    invalid_arg "Chaos.cfg: stall_rate must be in [0, 1]";
  if stall_reader_watermark <= 0 then
    invalid_arg "Chaos.cfg: stall_reader_watermark must be positive";
  {
    shards;
    clients;
    queue_depth;
    drain_batch;
    rate;
    duration;
    key_range;
    contains_pct;
    crashes_per_shard;
    stall_rate;
    stall_delay_ns;
    stall_reader;
    stall_reader_watermark;
    recovery_p99_bound_ns;
    seed;
  }

type result = {
  structure : string;
  load : Open_loop.result;
  accepted : int; (* write ops the router accepted *)
  ledger_keys : int; (* distinct keys with an accepted write *)
  crashes : int array; (* per shard *)
  restarts : int array; (* per shard *)
  recovery_samples : int;
  recovery_p99_ns : int; (* 0 when no restart happened *)
  health : Health.state array;
  breaker_trips : int; (* total Open transitions across shards *)
  max_pressure : float; (* worst reclamation pressure observed (stall-reader) *)
  shutdown : Shard_router.shutdown_result;
  failures : string list; (* empty = the run proves the claims *)
}

let ok r = r.failures = []

let percentile_ns samples p =
  match List.sort compare samples with
  | [] -> 0
  | l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let rank =
        int_of_float (Float.ceil (p *. float_of_int n /. 100.0)) - 1
      in
      a.(max 0 (min (n - 1) rank))

let now_ns = Metrics.now_ns

let run (dict : (module Repro_dict.Dict.DICT)) (c : cfg) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  (* A budget sized for the planned crash count (windowed, so a genuine
     crash loop still exhausts it), with fast restarts: recovery latency
     is part of what the harness bounds. *)
  let policy =
    {
      Supervisor.max_restarts = (2 * c.crashes_per_shard) + 4;
      backoff_base_ns = 200_000;
      backoff_max_ns = 5_000_000;
      reset_after_ns = 500_000_000;
    }
  in
  (* Stall-reader runs narrow the reclaimer watermark so the retired
     backlog crosses the pressure thresholds within a short run (the
     watermark is read at table creation; restore it right after). They
     also arm the mod-queue staleness watchdog: a bag-full updater
     blocks in the inline-free grace period, and the producers are the
     side that must notice. *)
  let saved_watermark = Reclaimer.watermark () in
  if c.stall_reader then Reclaimer.set_watermark c.stall_reader_watermark;
  let t =
    S.create ~shards:c.shards ~queue_depth:c.queue_depth
      ~drain_batch:c.drain_batch ~max_clients:(c.clients + 2)
      ~supervisor:policy ~seed:c.seed ()
  in
  if c.stall_reader then Reclaimer.set_watermark saved_watermark;
  let saved_stall_thr = Mod_queue.stall_threshold_ns () in
  if c.stall_reader && saved_stall_thr = 0 then
    Mod_queue.set_stall_threshold_ns 50_000_000;
  S.start t;
  if c.stall_rate > 0.0 then
    Fault.set "server.drain.stall" ~rate:c.stall_rate
      ~action:(Fault.Delay_ns c.stall_delay_ns);
  let writes_pct = 100 - c.contains_pct in
  let insert_pct = (writes_pct * 2 + 2) / 3 in
  let mix =
    W.mix ~contains:c.contains_pct ~insert:insert_pct
      ~delete:(writes_pct - insert_pct)
  in
  let spec =
    Open_loop.spec ~clients:c.clients ~rate:c.rate ~duration:c.duration ~mix
      ~key_range:c.key_range ~seed:c.seed ()
  in
  let ledgers = Array.init c.clients (fun _ -> Hashtbl.create 1024) in
  let accepted = Array.make c.clients 0 in
  let make_client i =
    let h = S.register t in
    let ledger = ledgers.(i) in
    (* The ledger needs "accepted implies applied", so chaos writes carry
       no deadline — an expired entry is accepted-then-unapplied by
       design, which would poison the audit. Breaker rejects are
       backpressure that clears ([Busy]); [Expired] cannot occur with
       deadline 0 but maps terminal for totality. *)
    let write_outcome = function
      | Error
          ( Shard_router.Full | Shard_router.Overload
          | Shard_router.Breaker_open ) ->
          Open_loop.Busy
      | Error Shard_router.Expired -> Open_loop.Expired
      | Error (Shard_router.Failed | Shard_router.Shutdown) ->
          Open_loop.Dropped
      | Ok () -> assert false (* accepted writes are handled inline *)
    in
    {
      Open_loop.run_op =
        (fun op k _deadline ->
          (* Private key slice: k mod clients = i, so nobody else ever
             writes this key. *)
          let key = (k * c.clients) + i in
          match op with
          | W.Contains -> Open_loop.Applied (S.mem h key)
          | W.Insert -> (
              match S.insert h key key with
              | Ok () ->
                  Hashtbl.replace ledger key (Some key);
                  accepted.(i) <- accepted.(i) + 1;
                  Open_loop.Applied true
              | Error _ as e -> write_outcome e)
          | W.Delete -> (
              match S.delete h key with
              | Ok () ->
                  Hashtbl.replace ledger key None;
                  accepted.(i) <- accepted.(i) + 1;
                  Open_loop.Applied true
              | Error _ as e -> write_outcome e));
      finish = (fun () -> S.unregister h);
    }
  in
  (* Crash driver: [crashes_per_shard] rounds spread across the run; each
     round arms every shard's one-shot crash flag and waits (bounded) for
     the flags to be consumed — under write load an armed flag fires at
     the next entry application, so rounds do not silently coalesce. *)
  let stop_driver = Atomic.make false in
  let driver =
    Domain.spawn (fun () ->
        let gap = c.duration /. float_of_int (c.crashes_per_shard + 1) in
        let rec round n =
          if n <= c.crashes_per_shard && not (Atomic.get stop_driver) then begin
            Unix.sleepf gap;
            if not (Atomic.get stop_driver) then begin
              let base = S.crashes t in
              for i = 0 to c.shards - 1 do
                S.crash_updater t i
              done;
              let deadline = now_ns () + int_of_float (gap *. 0.9e9) in
              let consumed () =
                let cur = S.crashes t in
                let all = ref true in
                Array.iteri
                  (fun i b -> if cur.(i) <= b then all := false)
                  base;
                !all
              in
              let rec wait () =
                if
                  (not (consumed ()))
                  && now_ns () < deadline
                  && not (Atomic.get stop_driver)
                then begin
                  Unix.sleepf 0.001;
                  wait ()
                end
              in
              wait ();
              round (n + 1)
            end
          end
        in
        round 1)
  in
  (* Reader parker: after a quarter of the run, hold an RCU read section
     open on shard 0 for ~40% of the run, sampling every shard's
     reclamation pressure while parked. Grace periods on that shard
     cannot complete; the first blocked unlink continuation holds its
     node locks, the updater convoys on them, and the pressure signal's
     grace-period-stall term saturates (>= 1.0) while the retired bags
     stay small — which is itself the boundedness evidence: lock
     inheritance throttles retirement, and the stall term is what makes
     the wedge visible to admission control. *)
  let max_pressure = Atomic.make 0.0 in
  let sample_pressure () =
    Array.iter
      (fun p ->
        let rec bump () =
          let cur = Atomic.get max_pressure in
          if p > cur && not (Atomic.compare_and_set max_pressure cur p) then
            bump ()
        in
        bump ())
      (S.reclaim_pressures t)
  in
  let parker =
    if not c.stall_reader then None
    else
      Some
        (Domain.spawn (fun () ->
             Unix.sleepf (c.duration *. 0.25);
             if not (Atomic.get stop_driver) then
               S.with_shard_reader t 0 (fun () ->
                   let until =
                     now_ns () + int_of_float (c.duration *. 0.4e9)
                   in
                   while
                     now_ns () < until && not (Atomic.get stop_driver)
                   do
                     sample_pressure ();
                     Unix.sleepf 0.002
                   done)))
  in
  let load = Open_loop.run spec make_client in
  Atomic.set stop_driver true;
  Domain.join driver;
  (match parker with Some d -> Domain.join d | None -> ());
  if c.stall_reader && saved_stall_thr = 0 then
    Mod_queue.set_stall_threshold_ns 0;
  if c.stall_rate > 0.0 then Fault.set "server.drain.stall" ~rate:0.0;
  let breaker_trips = S.breaker_trips t in
  let crashes = S.crashes t in
  let restarts = S.restarts t in
  let shutdown = S.shutdown ~deadline_ns:10_000_000_000 t in
  let health = S.health t in
  let recovery = S.restart_latencies_ns t in
  (* --- the ledger audit --- *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (match shutdown with
  | Shard_router.Drained -> ()
  | Shard_router.Forced reports ->
      fail "shutdown forced (%d shards reported)" (List.length reports));
  Array.iteri
    (fun i st ->
      if st = Health.Failed then fail "shard %d failed (budget exhausted)" i)
    health;
  (* A parked reader can wedge shard 0's updater in an inline-free grace
     period, delaying crash-flag consumption past the driver's bounded
     wait — so the stall-reader scenario only requires each shard to
     have crashed at all, not the full round count. *)
  let wanted_crashes =
    if c.stall_reader then min 1 c.crashes_per_shard else c.crashes_per_shard
  in
  Array.iteri
    (fun i n ->
      if n < wanted_crashes then
        fail "shard %d crashed %d times, wanted >= %d" i n wanted_crashes)
    crashes;
  if c.stall_reader then begin
    (* The graceful-degradation claims: the pressure signal crossed the
       latch threshold, it stayed bounded (the ring caps the bag at the
       watermark and [pending] holds at most one spliced bag, so > 2.5x
       means the accounting broke), and the breakers actually opened —
       overload feedback reached admission control. *)
    let p = Atomic.get max_pressure in
    if p < 0.75 then
      fail "stall-reader: max reclamation pressure %.2f never crossed 0.75" p;
    if p > 2.5 then
      fail "stall-reader: reclamation pressure %.2f not bounded (> 2.5)" p;
    if breaker_trips = 0 then
      fail "stall-reader: no breaker ever opened under reclamation overload"
  end;
  let recovery_p99_ns = percentile_ns recovery 99.0 in
  if recovery_p99_ns > c.recovery_p99_bound_ns then
    fail "recovery p99 %d ns exceeds bound %d ns" recovery_p99_ns
      c.recovery_p99_bound_ns;
  let actual = Hashtbl.create 4096 in
  List.iter (fun (k, v) -> Hashtbl.replace actual k v) (S.to_list t);
  let ledger_keys = ref 0 in
  Array.iteri
    (fun i ledger ->
      Hashtbl.iter
        (fun k expect ->
          incr ledger_keys;
          match (expect, Hashtbl.find_opt actual k) with
          | Some _, Some v' when v' = k -> ()
          | Some v, Some v' ->
              fail
                "client %d key %d (shard %d): accepted insert of %d, tree \
                 holds %d"
                i k (S.shard_of t k) v v'
          | Some v, None ->
              fail
                "client %d key %d (shard %d): accepted insert of %d lost"
                i k (S.shard_of t k) v
          | None, None -> ()
          | None, Some v' ->
              fail
                "client %d key %d (shard %d): accepted delete, tree holds %d"
                i k (S.shard_of t k) v')
        ledger)
    ledgers;
  Hashtbl.iter
    (fun k _ ->
      let i = k mod c.clients in
      if not (Hashtbl.mem ledgers.(i) k) then
        fail "key %d (shard %d) present but never accepted" k (S.shard_of t k))
    actual;
  {
    structure = D.name;
    load;
    accepted = Array.fold_left ( + ) 0 accepted;
    ledger_keys = !ledger_keys;
    crashes;
    restarts;
    recovery_samples = List.length recovery;
    recovery_p99_ns;
    health;
    breaker_trips;
    max_pressure = Atomic.get max_pressure;
    shutdown;
    failures = List.rev !failures;
  }

let json (c : cfg) (r : result) =
  Json.Obj
    [
      ("structure", Json.String r.structure);
      ("shards", Json.Int c.shards);
      ("clients", Json.Int c.clients);
      ("queue_depth", Json.Int c.queue_depth);
      ("drain_batch", Json.Int c.drain_batch);
      ("offered_load_ops_per_s", Json.Float c.rate);
      ("duration_s", Json.Float c.duration);
      ("crashes_per_shard", Json.Int c.crashes_per_shard);
      ("stall_rate", Json.Float c.stall_rate);
      ("stall_reader", Json.Bool c.stall_reader);
      ( "ops",
        Json.Obj
          [
            ("issued", Json.Int r.load.Open_loop.issued);
            ("completed", Json.Int r.load.Open_loop.completed);
            ("dropped", Json.Int r.load.Open_loop.dropped);
            ("accepted_writes", Json.Int r.accepted);
            ("ledger_keys", Json.Int r.ledger_keys);
          ] );
      ( "crashes",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) r.crashes))
      );
      ( "restarts",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) r.restarts))
      );
      ("recovery_samples", Json.Int r.recovery_samples);
      ("recovery_p99_ns", Json.Int r.recovery_p99_ns);
      ("breaker_trips", Json.Int r.breaker_trips);
      ("max_reclaim_pressure", Json.Float r.max_pressure);
      ( "health",
        Json.List
          (Array.to_list
             (Array.map (fun s -> Json.String (Health.state_name s)) r.health))
      );
      ( "shutdown",
        Json.String
          (match r.shutdown with
          | Shard_router.Drained -> "drained"
          | Shard_router.Forced _ -> "forced") );
      ("ok", Json.Bool (ok r));
      ("failures", Json.List (List.map (fun s -> Json.String s) r.failures));
    ]

(* --- the seeded mutation ---

   The backlog-adoption property deserves its own mutation test: a
   supervisor that forgets the crashed updater's pending batch
   ([mutate_forget_backlog]) must be caught deterministically, and the
   correct supervisor must stay silent under the identical schedule.

   Determinism: the writes are enqueued *before* [start], so the first
   drain splices a full 64-entry batch, and the armed one-shot crash
   flag fires at entry 0 of that batch — the pending remainder is the
   whole batch. The mutant therefore loses exactly the batch; the
   control adopts and applies it all. *)

type mutation_result = {
  expected : int;
  final_size : int;
  lost : int;
  caught : bool;
}

let mutation ?(mutate = true) (dict : (module Repro_dict.Dict.DICT)) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  let policy =
    {
      Supervisor.max_restarts = 4;
      backoff_base_ns = 100_000;
      backoff_max_ns = 1_000_000;
      reset_after_ns = 1_000_000_000;
    }
  in
  let t =
    S.create ~shards:1 ~queue_depth:256 ~drain_batch:64 ~max_clients:4
      ~supervisor:policy ~mutate_forget_backlog:mutate ()
  in
  let h = S.register t in
  let n = 100 in
  for k = 0 to n - 1 do
    match S.insert h k k with
    | Ok () -> ()
    | Error _ -> invalid_arg "Chaos.mutation: enqueue rejected before start"
  done;
  S.crash_updater t 0;
  S.start t;
  let sd = S.shutdown ~deadline_ns:5_000_000_000 t in
  let final = S.size t in
  S.check t;
  S.unregister h;
  (match sd with
  | Shard_router.Drained -> ()
  | Shard_router.Forced _ ->
      invalid_arg "Chaos.mutation: shutdown unexpectedly forced");
  { expected = n; final_size = final; lost = n - final; caught = final <> n }

(* --- breaker mutation ---

   An updater crash must open the shard's circuit breaker (the
   [Supervisor.on_crash] hook), and an open breaker must reject the next
   write. [mutate_breaker_never_opens] turns trips into no-ops; the
   mutant is caught when either half of that chain is missing.

   Determinism: a single shard, a single armed crash consumed by a
   single write, and an open interval configured long enough (>= 1 s
   after jitter) that the post-trip write always lands inside it. The
   control trips at crash time and rejects; the mutant never trips, the
   trip poll times out, and the write is admitted. *)

type breaker_mutation_result = {
  crash_seen : bool;  (** the armed updater crash fired *)
  tripped : bool;  (** the breaker recorded an Open transition *)
  rejected : bool;  (** the post-crash write got [Breaker_open] *)
  caught : bool;  (** the crash-to-breaker feedback chain is broken *)
}

let mutation_breaker ?(mutate = true) (dict : (module Repro_dict.Dict.DICT)) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  let policy =
    {
      Supervisor.max_restarts = 4;
      backoff_base_ns = 100_000;
      backoff_max_ns = 1_000_000;
      reset_after_ns = 1_000_000_000;
    }
  in
  (* Open long enough that jitter (>= 0.5x nominal) keeps the breaker
     open across the post-trip write, however slowly the test host
     schedules the intervening domains. *)
  let breaker =
    {
      Breaker.default_config with
      Breaker.open_base_ns = 2_000_000_000;
      open_max_ns = 4_000_000_000;
    }
  in
  let t =
    S.create ~shards:1 ~queue_depth:256 ~drain_batch:64 ~max_clients:4
      ~supervisor:policy ~breaker ~mutate_breaker_never_opens:mutate ()
  in
  let h = S.register t in
  S.start t;
  S.crash_updater t 0;
  (* One write to consume the armed crash flag at its application. *)
  (match S.insert h 0 0 with
  | Ok () -> ()
  | Error _ -> invalid_arg "Chaos.mutation_breaker: trigger write rejected");
  let poll deadline_s cond =
    let deadline = now_ns () + int_of_float (deadline_s *. 1e9) in
    let rec go () =
      if cond () then true
      else if now_ns () >= deadline then false
      else begin
        Unix.sleepf 0.001;
        go ()
      end
    in
    go ()
  in
  let crash_seen = poll 2.0 (fun () -> (S.crashes t).(0) >= 1) in
  (* The control trips synchronously inside the crash handler, so this
     poll is only ever slow for the mutant (which times out). *)
  let tripped = poll 0.5 (fun () -> S.breaker_trips t > 0) in
  let rejected =
    match S.insert h 1 1 with
    | Error Shard_router.Breaker_open -> true
    | _ -> false
  in
  (match S.shutdown ~deadline_ns:5_000_000_000 t with
  | Shard_router.Drained -> ()
  | Shard_router.Forced _ ->
      invalid_arg "Chaos.mutation_breaker: shutdown unexpectedly forced");
  S.check t;
  S.unregister h;
  { crash_seen; tripped; rejected; caught = not (tripped && rejected) }

(* --- deadline mutation ---

   The updater's drain must expire queued entries whose deadline has
   passed instead of applying them. [mutate_skip_deadline] removes the
   drain-side check; the mutant is caught when already-dead work still
   reaches the tree.

   Determinism: the writes are enqueued *before* [start] with a deadline
   comfortably in the future (so dead-on-arrival admission cannot expire
   them), then the harness sleeps past that deadline before starting the
   updater. Every queued entry is therefore expired by the time the
   first drain runs: the control applies none, the mutant applies all. *)

type deadline_mutation_result = {
  queued : int;  (** writes accepted into the queue before [start] *)
  applied : int;  (** keys in the tree after shutdown *)
  caught : bool;  (** expired work reached the tree *)
}

let mutation_deadline ?(mutate = true) (dict : (module Repro_dict.Dict.DICT)) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  let t =
    S.create ~shards:1 ~queue_depth:256 ~drain_batch:64 ~max_clients:4
      ~mutate_skip_deadline:mutate ()
  in
  let h = S.register t in
  let n = 50 in
  let deadline_ns = now_ns () + 20_000_000 in
  for k = 0 to n - 1 do
    match S.insert h ~deadline_ns k k with
    | Ok () -> ()
    | Error _ ->
        invalid_arg "Chaos.mutation_deadline: enqueue rejected before start"
  done;
  (* Sleep past every queued deadline, then let the updater drain. *)
  Unix.sleepf 0.06;
  S.start t;
  (match S.shutdown ~deadline_ns:5_000_000_000 t with
  | Shard_router.Drained -> ()
  | Shard_router.Forced _ ->
      invalid_arg "Chaos.mutation_deadline: shutdown unexpectedly forced");
  let applied = S.size t in
  S.check t;
  S.unregister h;
  { queued = n; applied; caught = applied > 0 }
