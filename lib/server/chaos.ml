module W = Repro_workload.Workload
module Open_loop = Repro_workload.Open_loop
module Json = Repro_obs.Json
module Metrics = Repro_sync.Metrics
module Fault = Repro_fault.Fault

(* Chaos harness for the serving layer: drive the sharded service with
   open-loop load while repeatedly crashing updater domains (and
   optionally stalling drains), then prove end to end that no accepted
   write was lost.

   The proof is a per-client ledger. Each client owns a private slice of
   the key space (key = harness_key * clients + client_index), so every
   key is written by exactly one client, in program order; the router
   sends a key to one shard FIFO queue; therefore the last *accepted*
   write per key fully determines its expected final state, with no
   cross-client races to reason about. The ledger records exactly the
   accepted ([Ok]) writes — rejected ones (backpressure under crash
   load) are excluded by construction. After a [Drained] shutdown the
   union of ledgers must equal the tree contents, key for key. *)

type cfg = {
  shards : int;
  clients : int;
  queue_depth : int;
  drain_batch : int;
  rate : float;
  duration : float;
  key_range : int;
  contains_pct : int;
  crashes_per_shard : int;
  stall_rate : float;
  stall_delay_ns : int;
  recovery_p99_bound_ns : int;
  seed : int64;
}

let cfg ?(shards = 4) ?(clients = 4) ?(queue_depth = 1024) ?(drain_batch = 64)
    ?(rate = 20_000.0) ?(duration = 2.0) ?(key_range = 8_192)
    ?(contains_pct = 20) ?(crashes_per_shard = 3) ?(stall_rate = 0.0)
    ?(stall_delay_ns = 2_000_000) ?(recovery_p99_bound_ns = 250_000_000)
    ?(seed = 42L) () =
  if crashes_per_shard < 0 then
    invalid_arg "Chaos.cfg: crashes_per_shard must be >= 0";
  if contains_pct < 0 || contains_pct > 100 then
    invalid_arg "Chaos.cfg: contains_pct must be in [0, 100]";
  if stall_rate < 0.0 || stall_rate > 1.0 then
    invalid_arg "Chaos.cfg: stall_rate must be in [0, 1]";
  {
    shards;
    clients;
    queue_depth;
    drain_batch;
    rate;
    duration;
    key_range;
    contains_pct;
    crashes_per_shard;
    stall_rate;
    stall_delay_ns;
    recovery_p99_bound_ns;
    seed;
  }

type result = {
  structure : string;
  load : Open_loop.result;
  accepted : int; (* write ops the router accepted *)
  ledger_keys : int; (* distinct keys with an accepted write *)
  crashes : int array; (* per shard *)
  restarts : int array; (* per shard *)
  recovery_samples : int;
  recovery_p99_ns : int; (* 0 when no restart happened *)
  health : Health.state array;
  shutdown : Shard_router.shutdown_result;
  failures : string list; (* empty = the run proves the claims *)
}

let ok r = r.failures = []

let percentile_ns samples p =
  match List.sort compare samples with
  | [] -> 0
  | l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let rank =
        int_of_float (Float.ceil (p *. float_of_int n /. 100.0)) - 1
      in
      a.(max 0 (min (n - 1) rank))

let now_ns = Metrics.now_ns

let run (dict : (module Repro_dict.Dict.DICT)) (c : cfg) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  (* A budget sized for the planned crash count (windowed, so a genuine
     crash loop still exhausts it), with fast restarts: recovery latency
     is part of what the harness bounds. *)
  let policy =
    {
      Supervisor.max_restarts = (2 * c.crashes_per_shard) + 4;
      backoff_base_ns = 200_000;
      backoff_max_ns = 5_000_000;
      reset_after_ns = 500_000_000;
    }
  in
  let t =
    S.create ~shards:c.shards ~queue_depth:c.queue_depth
      ~drain_batch:c.drain_batch ~max_clients:(c.clients + 2)
      ~supervisor:policy ()
  in
  S.start t;
  if c.stall_rate > 0.0 then
    Fault.set "server.drain.stall" ~rate:c.stall_rate
      ~action:(Fault.Delay_ns c.stall_delay_ns);
  let writes_pct = 100 - c.contains_pct in
  let insert_pct = (writes_pct * 2 + 2) / 3 in
  let mix =
    W.mix ~contains:c.contains_pct ~insert:insert_pct
      ~delete:(writes_pct - insert_pct)
  in
  let spec =
    Open_loop.spec ~clients:c.clients ~rate:c.rate ~duration:c.duration ~mix
      ~key_range:c.key_range ~seed:c.seed ()
  in
  let ledgers = Array.init c.clients (fun _ -> Hashtbl.create 1024) in
  let accepted = Array.make c.clients 0 in
  let make_client i =
    let h = S.register t in
    let ledger = ledgers.(i) in
    {
      Open_loop.run_op =
        (fun op k ->
          (* Private key slice: k mod clients = i, so nobody else ever
             writes this key. *)
          let key = (k * c.clients) + i in
          match op with
          | W.Contains -> Open_loop.Applied (S.mem h key)
          | W.Insert -> (
              match S.insert h key key with
              | Ok () ->
                  Hashtbl.replace ledger key (Some key);
                  accepted.(i) <- accepted.(i) + 1;
                  Open_loop.Applied true
              | Error (Shard_router.Full | Shard_router.Overload) ->
                  Open_loop.Busy
              | Error _ -> Open_loop.Dropped)
          | W.Delete -> (
              match S.delete h key with
              | Ok () ->
                  Hashtbl.replace ledger key None;
                  accepted.(i) <- accepted.(i) + 1;
                  Open_loop.Applied true
              | Error (Shard_router.Full | Shard_router.Overload) ->
                  Open_loop.Busy
              | Error _ -> Open_loop.Dropped));
      finish = (fun () -> S.unregister h);
    }
  in
  (* Crash driver: [crashes_per_shard] rounds spread across the run; each
     round arms every shard's one-shot crash flag and waits (bounded) for
     the flags to be consumed — under write load an armed flag fires at
     the next entry application, so rounds do not silently coalesce. *)
  let stop_driver = Atomic.make false in
  let driver =
    Domain.spawn (fun () ->
        let gap = c.duration /. float_of_int (c.crashes_per_shard + 1) in
        let rec round n =
          if n <= c.crashes_per_shard && not (Atomic.get stop_driver) then begin
            Unix.sleepf gap;
            if not (Atomic.get stop_driver) then begin
              let base = S.crashes t in
              for i = 0 to c.shards - 1 do
                S.crash_updater t i
              done;
              let deadline = now_ns () + int_of_float (gap *. 0.9e9) in
              let consumed () =
                let cur = S.crashes t in
                let all = ref true in
                Array.iteri
                  (fun i b -> if cur.(i) <= b then all := false)
                  base;
                !all
              in
              let rec wait () =
                if
                  (not (consumed ()))
                  && now_ns () < deadline
                  && not (Atomic.get stop_driver)
                then begin
                  Unix.sleepf 0.001;
                  wait ()
                end
              in
              wait ();
              round (n + 1)
            end
          end
        in
        round 1)
  in
  let load = Open_loop.run spec make_client in
  Atomic.set stop_driver true;
  Domain.join driver;
  if c.stall_rate > 0.0 then Fault.set "server.drain.stall" ~rate:0.0;
  let crashes = S.crashes t in
  let restarts = S.restarts t in
  let shutdown = S.shutdown ~deadline_ns:10_000_000_000 t in
  let health = S.health t in
  let recovery = S.restart_latencies_ns t in
  (* --- the ledger audit --- *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (match shutdown with
  | Shard_router.Drained -> ()
  | Shard_router.Forced reports ->
      fail "shutdown forced (%d shards reported)" (List.length reports));
  Array.iteri
    (fun i st ->
      if st = Health.Failed then fail "shard %d failed (budget exhausted)" i)
    health;
  Array.iteri
    (fun i n ->
      if n < c.crashes_per_shard then
        fail "shard %d crashed %d times, wanted >= %d" i n c.crashes_per_shard)
    crashes;
  let recovery_p99_ns = percentile_ns recovery 99.0 in
  if recovery_p99_ns > c.recovery_p99_bound_ns then
    fail "recovery p99 %d ns exceeds bound %d ns" recovery_p99_ns
      c.recovery_p99_bound_ns;
  let actual = Hashtbl.create 4096 in
  List.iter (fun (k, v) -> Hashtbl.replace actual k v) (S.to_list t);
  let ledger_keys = ref 0 in
  Array.iteri
    (fun i ledger ->
      Hashtbl.iter
        (fun k expect ->
          incr ledger_keys;
          match (expect, Hashtbl.find_opt actual k) with
          | Some _, Some v' when v' = k -> ()
          | Some v, Some v' ->
              fail
                "client %d key %d (shard %d): accepted insert of %d, tree \
                 holds %d"
                i k (S.shard_of t k) v v'
          | Some v, None ->
              fail
                "client %d key %d (shard %d): accepted insert of %d lost"
                i k (S.shard_of t k) v
          | None, None -> ()
          | None, Some v' ->
              fail
                "client %d key %d (shard %d): accepted delete, tree holds %d"
                i k (S.shard_of t k) v')
        ledger)
    ledgers;
  Hashtbl.iter
    (fun k _ ->
      let i = k mod c.clients in
      if not (Hashtbl.mem ledgers.(i) k) then
        fail "key %d (shard %d) present but never accepted" k (S.shard_of t k))
    actual;
  {
    structure = D.name;
    load;
    accepted = Array.fold_left ( + ) 0 accepted;
    ledger_keys = !ledger_keys;
    crashes;
    restarts;
    recovery_samples = List.length recovery;
    recovery_p99_ns;
    health;
    shutdown;
    failures = List.rev !failures;
  }

let json (c : cfg) (r : result) =
  Json.Obj
    [
      ("structure", Json.String r.structure);
      ("shards", Json.Int c.shards);
      ("clients", Json.Int c.clients);
      ("queue_depth", Json.Int c.queue_depth);
      ("drain_batch", Json.Int c.drain_batch);
      ("offered_load_ops_per_s", Json.Float c.rate);
      ("duration_s", Json.Float c.duration);
      ("crashes_per_shard", Json.Int c.crashes_per_shard);
      ("stall_rate", Json.Float c.stall_rate);
      ( "ops",
        Json.Obj
          [
            ("issued", Json.Int r.load.Open_loop.issued);
            ("completed", Json.Int r.load.Open_loop.completed);
            ("dropped", Json.Int r.load.Open_loop.dropped);
            ("accepted_writes", Json.Int r.accepted);
            ("ledger_keys", Json.Int r.ledger_keys);
          ] );
      ( "crashes",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) r.crashes))
      );
      ( "restarts",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) r.restarts))
      );
      ("recovery_samples", Json.Int r.recovery_samples);
      ("recovery_p99_ns", Json.Int r.recovery_p99_ns);
      ( "health",
        Json.List
          (Array.to_list
             (Array.map (fun s -> Json.String (Health.state_name s)) r.health))
      );
      ( "shutdown",
        Json.String
          (match r.shutdown with
          | Shard_router.Drained -> "drained"
          | Shard_router.Forced _ -> "forced") );
      ("ok", Json.Bool (ok r));
      ("failures", Json.List (List.map (fun s -> Json.String s) r.failures));
    ]

(* --- the seeded mutation ---

   The backlog-adoption property deserves its own mutation test: a
   supervisor that forgets the crashed updater's pending batch
   ([mutate_forget_backlog]) must be caught deterministically, and the
   correct supervisor must stay silent under the identical schedule.

   Determinism: the writes are enqueued *before* [start], so the first
   drain splices a full 64-entry batch, and the armed one-shot crash
   flag fires at entry 0 of that batch — the pending remainder is the
   whole batch. The mutant therefore loses exactly the batch; the
   control adopts and applies it all. *)

type mutation_result = {
  expected : int;
  final_size : int;
  lost : int;
  caught : bool;
}

let mutation ?(mutate = true) (dict : (module Repro_dict.Dict.DICT)) =
  let module D = (val dict) in
  let module S = Shard_router.Make (D) in
  let policy =
    {
      Supervisor.max_restarts = 4;
      backoff_base_ns = 100_000;
      backoff_max_ns = 1_000_000;
      reset_after_ns = 1_000_000_000;
    }
  in
  let t =
    S.create ~shards:1 ~queue_depth:256 ~drain_batch:64 ~max_clients:4
      ~supervisor:policy ~mutate_forget_backlog:mutate ()
  in
  let h = S.register t in
  let n = 100 in
  for k = 0 to n - 1 do
    match S.insert h k k with
    | Ok () -> ()
    | Error _ -> invalid_arg "Chaos.mutation: enqueue rejected before start"
  done;
  S.crash_updater t 0;
  S.start t;
  let sd = S.shutdown ~deadline_ns:5_000_000_000 t in
  let final = S.size t in
  S.check t;
  S.unregister h;
  (match sd with
  | Shard_router.Drained -> ()
  | Shard_router.Forced _ ->
      invalid_arg "Chaos.mutation: shutdown unexpectedly forced");
  { expected = n; final_size = final; lost = n - final; caught = final <> n }
