module Spinlock = Repro_sync.Spinlock
module San = Repro_sanitizer.Sanitizer

type color = Red | Black

module Make (R : Repro_rcu.Rcu.S) = struct
  type 'v node = {
    key : int;
    value : 'v;
    left : 'v node option Atomic.t; (* read by concurrent readers *)
    right : 'v node option Atomic.t;
    mutable color : color; (* writer-only (single writer under lock) *)
    mutable parent : 'v node option; (* writer-only *)
    mutable shadow : San.record option; (* set by delete when sanitizing *)
  }

  type 'v t = {
    root : 'v node option Atomic.t;
    writer : Spinlock.t;
    rcu : R.t;
    san : San.domain;
  }

  type 'v handle = { tree : 'v t; rt : R.thread }

  let left = 0
  let right = 1
  let field n d = if d = left then n.left else n.right
  let child n d = Atomic.get (field n d)
  let other d = 1 - d

  let same_node a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | None, Some _ | Some _, None -> false

  let create ?max_threads () =
    {
      root = Atomic.make None;
      writer = Spinlock.create ();
      rcu = R.create ?max_threads ();
      san = San.create ("rb_rcu/" ^ R.name);
    }

  let register tree = { tree; rt = R.register tree.rcu }
  let unregister h = R.unregister h.rt

  let contains h key =
    (* Lock first so the finally may assume it is held; the sanitizer
       check can raise [San.Violation] and no node locks are held here,
       so raising (and unwinding through the read unlock) is safe. *)
    R.read_lock h.rt;
    Fun.protect
      ~finally:(fun () -> R.read_unlock h.rt)
      (fun () ->
        let rec go = function
          | None -> None
          | Some n ->
              if San.enabled () then
                Option.iter
                  (San.check ~slot:(R.reader_slot h.rt)
                     ~cookie:(R.reader_cookie h.rt))
                  n.shadow;
              if key < n.key then go (child n left)
              else if key > n.key then go (child n right)
              else Some n.value
        in
        go (Atomic.get h.tree.root))

  let mem h key = Option.is_some (contains h key)

  (* --- writer-side helpers (the global lock is held) --- *)

  let set_parent child p =
    match child with Some c -> c.parent <- p | None -> ()

  (* Direction from parent [p] to child node [n]. *)
  let dir_of p n = if same_node (child p left) (Some n) then left else right

  (* Swing the pointer that leads to [old_node] so it leads to [repl]. *)
  let swing t old_node repl =
    (match old_node.parent with
    | None -> Atomic.set t.root repl
    | Some p -> Atomic.set (field p (dir_of p old_node)) repl);
    set_parent repl old_node.parent

  (* Relativistic rotation: [x]'s child in direction [other d] moves up,
     [x] moves down in direction [d] — as a COPY [x'], installed below the
     riser before the single swing that makes the new layout reachable.
     Readers inside the old [x] keep following a consistent obsolete path.
     Returns the copy (callers must substitute it for [x]). *)
  let rotate t x d =
    let y =
      match child x (other d) with Some y -> y | None -> assert false
    in
    let a = child x d in
    let b = child y d in
    let x' =
      {
        key = x.key;
        value = x.value;
        color = x.color;
        parent = Some y;
        left = Atomic.make (if d = left then a else b);
        right = Atomic.make (if d = left then b else a);
        shadow = None;
      }
    in
    set_parent a (Some x');
    set_parent b (Some x');
    (* Publish the copy beneath the riser: the intermediate state is
       consistent for readers (duplicate of x.key on an extended path). *)
    Atomic.set (field y d) (Some x');
    swing t x (Some y);
    x'

  let color_of = function None -> Black | Some n -> n.color

  (* CLRS insert fixup with copy substitution: every rotation invalidates
     the rotated node, so the fixup re-reads parents from the copies. *)
  let rec insert_fixup t z =
    match z.parent with
    | None -> z.color <- Black (* z is the root *)
    | Some zp ->
        if zp.color = Black then ()
        else begin
          (* zp is red, hence not the root; the grandparent exists. *)
          let zg = match zp.parent with Some g -> g | None -> assert false in
          let d = dir_of zg zp in
          let uncle = child zg (other d) in
          if color_of uncle = Red then begin
            zp.color <- Black;
            (match uncle with Some u -> u.color <- Black | None -> ());
            zg.color <- Red;
            insert_fixup t zg
          end
          else begin
            let zp, _z =
              if same_node (child zp (other d)) (Some z) then begin
                (* Inner case: straighten first. [rotate] moves zp down as a
                   copy; the riser (old z) becomes the new zp. *)
                let zp' = rotate t zp d in
                (Option.get zp'.parent, zp')
              end
              else (zp, z)
            in
            zp.color <- Black;
            zg.color <- Red;
            ignore (rotate t zg (other d))
          end
        end

  let insert h key value =
    let t = h.tree in
    Spinlock.acquire t.writer;
    let rec find parent node =
      match node with
      | None -> Ok parent
      | Some n ->
          if key < n.key then find (Some n) (child n left)
          else if key > n.key then find (Some n) (child n right)
          else Error ()
    in
    let result =
      match find None (Atomic.get t.root) with
      | Error () -> false
      | Ok parent ->
          let node =
            {
              key;
              value;
              color = Red;
              parent;
              left = Atomic.make None;
              right = Atomic.make None;
              shadow = None;
            }
          in
          (match parent with
          | None ->
              node.color <- Black;
              Atomic.set t.root (Some node)
          | Some p ->
              let d = if key < p.key then left else right in
              Atomic.set (field p d) (Some node);
              insert_fixup t node);
          true
    in
    Spinlock.release t.writer;
    result

  (* CLRS delete fixup. The deficit position is tracked as (parent, dir)
     because the node there may be None. *)
  let rec delete_fixup t xp d =
    let x = child xp d in
    if color_of x = Red then
      match x with Some x -> x.color <- Black | None -> assert false
    else begin
      let w = match child xp (other d) with Some w -> w | None -> assert false in
      if w.color = Red then begin
        (* Case 1: red sibling — rotate it up, recurse with a black one. *)
        w.color <- Black;
        xp.color <- Red;
        let xp' = rotate t xp d in
        delete_fixup t xp' d
      end
      else if color_of (child w left) = Black && color_of (child w right) = Black
      then begin
        (* Case 2: recolor and move the deficit up. *)
        w.color <- Red;
        match xp.parent with
        | None -> () (* deficit reached the root: done *)
        | Some g ->
            let gd = dir_of g xp in
            if xp.color = Red then xp.color <- Black else delete_fixup t g gd
      end
      else begin
        let w =
          if color_of (child w (other d)) = Black then begin
            (* Case 3: near nephew red — rotate the sibling. *)
            (match child w d with
            | Some near -> near.color <- Black
            | None -> assert false);
            w.color <- Red;
            let w' = rotate t w (other d) in
            (* The riser (old near nephew) is the new sibling. *)
            match w'.parent with Some s -> s | None -> assert false
          end
          else w
        in
        (* Case 4: far nephew red — rotate the parent, deficit resolved. *)
        w.color <- xp.color;
        xp.color <- Black;
        (match child w (other d) with
        | Some far -> far.color <- Black
        | None -> assert false);
        ignore (rotate t xp d)
      end
    end

  (* Unlink node [n], which has at most one child, splicing that child (or
     None) into its place; then repair the black-height if n was black. *)
  let bypass t n =
    let c = match child n left with Some _ as c -> c | None -> child n right in
    let p = n.parent in
    let d = match p with Some p -> dir_of p n | None -> left in
    swing t n c;
    if n.color = Black then
      match c with
      | Some c when c.color = Red -> c.color <- Black
      | _ -> (
          match p with
          | None -> () (* removed the root; nothing to fix *)
          | Some p -> delete_fixup t p d)

  let delete h key =
    let t = h.tree in
    Spinlock.acquire t.writer;
    let rec find = function
      | None -> None
      | Some n ->
          if key < n.key then find (child n left)
          else if key > n.key then find (child n right)
          else Some n
    in
    let result =
      match find (Atomic.get t.root) with
      | None -> false
      | Some z -> (
          match (child z left, child z right) with
          | None, _ | _, None -> bypass t z; true
          | Some _, Some zr ->
              (* Two children: publish a copy of the successor in z's place,
                 wait for pre-existing readers, then unlink the original
                 successor (which has no left child). *)
              let rec min_node m =
                match child m left with Some l -> min_node l | None -> m
              in
              let s = min_node zr in
              let z' =
                {
                  key = s.key;
                  value = s.value;
                  color = z.color;
                  parent = z.parent;
                  left = Atomic.make (child z left);
                  right = Atomic.make (child z right);
                  shadow = None;
                }
              in
              set_parent (child z' left) (Some z');
              set_parent (child z' right) (Some z');
              swing t z (Some z');
              let sh =
                if San.enabled () then begin
                  let sh = San.register t.san in
                  s.shadow <- Some sh;
                  San.on_defer sh ~gp:(R.gp_cookie t.rcu);
                  Some sh
                end
                else None
              in
              (* Readers searching for s.key may still be between z and s:
                 let them finish before s disappears from its old spot. *)
              R.synchronize t.rcu;
              bypass t s;
              (match sh with
              | None -> ()
              | Some sh ->
                  (* The first grace period only licenses the bypass above:
                     readers that entered during it may legally traverse [s]
                     right up to the unlink. Only after a second grace
                     period is touching [s] a use-after-reclaim, so the
                     shadow flips to Reclaimed here — mirroring where a C
                     implementation would [free]. *)
                  R.synchronize t.rcu;
                  San.on_reclaim ~gp:(R.gp_cookie t.rcu) sh);
              true)
    in
    Spinlock.release t.writer;
    result

  (* --- Quiescent-state helpers --- *)

  let fold_inorder f acc t =
    let rec go acc = function
      | None -> acc
      | Some n ->
          let acc = go acc (child n left) in
          let acc = f acc n.key n.value in
          go acc (child n right)
    in
    go acc (Atomic.get t.root)

  let size t = fold_inorder (fun acc _ _ -> acc + 1) 0 t
  let to_list t = List.rev (fold_inorder (fun acc k v -> (k, v) :: acc) [] t)

  let height t =
    let rec go = function
      | None -> 0
      | Some n -> 1 + max (go (child n left)) (go (child n right))
    in
    go (Atomic.get t.root)

  exception Invariant_violation of string

  let check_invariants t =
    let fail msg = raise (Invariant_violation msg) in
    (* Returns the black height of the subtree. *)
    let rec check lo hi parent node =
      match node with
      | None -> 1
      | Some n ->
          (match lo with
          | Some lo when n.key <= lo -> fail "BST order violated (lower bound)"
          | _ -> ());
          (match hi with
          | Some hi when n.key >= hi -> fail "BST order violated (upper bound)"
          | _ -> ());
          (match (n.parent, parent) with
          | None, None -> ()
          | Some p, Some q when p == q -> ()
          | _ -> fail "parent pointer inconsistent");
          if n.color = Red then begin
            if color_of (child n left) = Red || color_of (child n right) = Red
            then fail "red node with red child"
          end;
          let bl = check lo (Some n.key) (Some n) (child n left) in
          let br = check (Some n.key) hi (Some n) (child n right) in
          if bl <> br then fail "black heights differ";
          bl + (if n.color = Black then 1 else 0)
    in
    (match Atomic.get t.root with
    | Some r when r.color = Red -> fail "root is red"
    | _ -> ());
    ignore (check None None None (Atomic.get t.root))
end
