(** Lazy concurrent list-based set (Heller, Herlihy, Luchangco, Moir,
    Scherer & Shavit, OPODIS 2006).

    The origin of the [marked]-bit validation technique Citrus borrows
    (the paper cites it for exactly that): nodes are logically deleted by
    setting a mark under lock, then physically unlinked; lock-free
    [contains] checks the mark instead of re-traversing; updates lock the
    two affected nodes and validate marks and adjacency.

    O(n) operations — a baseline and building block, only suitable for
    small key ranges. *)

type 'v t

val create : unit -> 'v t
(** User keys must lie strictly between [min_int] and [max_int]
    (the head/tail sentinels). *)

val contains : 'v t -> int -> 'v option
(** Wait-free. *)

val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

(** Quiescent-state helpers. *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list

val attach_shadow : 'v t -> int -> Repro_sanitizer.Sanitizer.record option
(** Test hook for the reclamation sanitizer: attach a freshly registered
    shadow record to the (unmarked) node holding the key. With the
    sanitizer armed, [contains] checks shadows on every node its
    traversal visits; update paths do not (they revalidate under locks).
    Deletion never touches shadows — the GC reclaims unlinked nodes, so
    there is no logical free to record. *)

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** Strictly sorted, no reachable marked node, sentinels intact, locks
    free. *)
