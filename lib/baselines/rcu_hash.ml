module Spinlock = Repro_sync.Spinlock
module San = Repro_sanitizer.Sanitizer

type 'v node = {
  key : int;
  value : 'v;
  next : 'v node option Atomic.t;
  mutable shadow : San.record option; (* attached by tests when sanitizing *)
}

type 'v t = {
  mask : int;
  chains : 'v node option Atomic.t array;
  locks : Spinlock.t array;
  san : San.domain;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(buckets = 1024) () =
  if buckets <= 0 then invalid_arg "Rcu_hash.create: buckets must be positive";
  let n = next_pow2 buckets 1 in
  {
    mask = n - 1;
    chains = Array.init n (fun _ -> Atomic.make None);
    locks = Array.init n (fun _ -> Spinlock.create ());
    san = San.create "rcu_hash";
  }

(* Fibonacci hashing spreads consecutive keys across buckets. *)
let bucket t key = (key * 0x2545F4914F6CDD1D) lsr 12 land t.mask

let contains t key =
  (* Wait-free: one chain traversal over atomically-read links. The
     sanitizer check is one branch when disarmed; armed, it raises
     [San.Violation] if the traversal touches a shadow-reclaimed node
     (shadows are attached by [attach_shadow] in tests — the GC performs
     the actual reclamation here, so production runs carry none). *)
  let rec go = function
    | None -> None
    | Some n ->
        if San.enabled () then Option.iter (fun s -> San.check s) n.shadow;
        if n.key < key then go (Atomic.get n.next)
        else if n.key = key then Some n.value
        else None
  in
  go (Atomic.get t.chains.(bucket t key))

let mem t key = Option.is_some (contains t key)

(* Updates hold the bucket lock, so they can use plain reasoning within a
   chain; every link store is still atomic for the readers' benefit. *)
let insert t key value =
  let b = bucket t key in
  Spinlock.with_lock t.locks.(b) (fun () ->
      let rec go field =
        match Atomic.get field with
        | Some n when n.key < key -> go n.next
        | Some n when n.key = key -> false
        | tail ->
            Atomic.set field
              (Some { key; value; next = Atomic.make tail; shadow = None });
            true
      in
      go t.chains.(b))

let delete t key =
  let b = bucket t key in
  Spinlock.with_lock t.locks.(b) (fun () ->
      let rec go field =
        match Atomic.get field with
        | Some n when n.key < key -> go n.next
        | Some n when n.key = key ->
            (* RCU unlink: a single store; readers inside [n] continue to
               its (still valid) successor, and the GC reclaims after they
               are done. *)
            Atomic.set field (Atomic.get n.next);
            true
        | Some _ | None -> false
      in
      go t.chains.(b))

(* Test hook: give the node holding [key] a shadow record registered in
   this table's sanitizer domain, so tests can walk it through the
   Deferred/Reclaimed lifecycle and assert [contains] trips on it. *)
let attach_shadow t key =
  let rec go = function
    | None -> None
    | Some n ->
        if n.key < key then go (Atomic.get n.next)
        else if n.key = key then begin
          let sh = San.register t.san in
          n.shadow <- Some sh;
          Some sh
        end
        else None
  in
  go (Atomic.get t.chains.(bucket t key))

(* --- Quiescent-state helpers --- *)

let fold f acc t =
  Array.fold_left
    (fun acc chain ->
      let rec go acc = function
        | None -> acc
        | Some n -> go (f acc n.key n.value) (Atomic.get n.next)
      in
      go acc (Atomic.get chain))
    acc t.chains

let size t = fold (fun acc _ _ -> acc + 1) 0 t

let to_list t =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (fold (fun acc k v -> (k, v) :: acc) [] t)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  Array.iteri
    (fun i chain ->
      if Spinlock.is_locked t.locks.(i) then fail "bucket lock held";
      let rec go prev = function
        | None -> ()
        | Some n ->
            if bucket t n.key <> i then fail "key in the wrong bucket";
            (match prev with
            | Some p when n.key <= p -> fail "chain not strictly sorted"
            | _ -> ());
            go (Some n.key) (Atomic.get n.next)
      in
      go None (Atomic.get chain))
    t.chains
