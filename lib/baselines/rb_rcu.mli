(** Relativistic red-black tree in the manner of Howard & Walpole
    (Concurrency & Computation 2013) — the paper's second RCU baseline.

    A single global lock serializes all updates (as in the original, where
    one writer at a time restructures the tree), while readers run
    wait-free inside RCU read-side critical sections. Reader safety during
    restructuring comes from two relativistic techniques:

    - {b copy-on-rotate}: a rotation never mutates the node that moves
      down; it installs a {e copy} of it below the node that moves up, then
      swings one child pointer. Readers inside the old node continue on an
      obsolete-but-consistent path; no grace period is needed.
    - {b successor move via grace period}: deleting a node with two
      children publishes a copy of its successor in the deleted position,
      calls [synchronize_rcu], and only then unlinks the original successor
      — the same discipline Citrus uses.

    The functor takes the RCU flavour; the evaluation instantiates it with
    the paper's new RCU.

    When the reclamation sanitizer ([Repro_sanitizer.Sanitizer]) is armed,
    the successor unlinked by a two-child delete carries a shadow record
    ([Deferred] at unpublication, [Reclaimed] one further grace period
    after the unlink) and [contains] checks every node it visits, raising
    [Sanitizer.Violation] on a logical use-after-free. Disarmed, the only
    read-side cost is one branch per visited node. *)

module Make (R : Repro_rcu.Rcu.S) : sig
  type 'v t
  type 'v handle

  val create : ?max_threads:int -> unit -> 'v t
  val register : 'v t -> 'v handle
  val unregister : 'v handle -> unit
  val contains : 'v handle -> int -> 'v option
  val mem : 'v handle -> int -> bool
  val insert : 'v handle -> int -> 'v -> bool
  val delete : 'v handle -> int -> bool

  (** Quiescent-state helpers. *)

  val size : 'v t -> int
  val to_list : 'v t -> (int * 'v) list
  val height : 'v t -> int

  exception Invariant_violation of string

  val check_invariants : 'v t -> unit
  (** BST order, red-black properties (black root, no red-red edge, equal
      black height on all paths), and parent-pointer consistency. *)
end
