(** RCU hash table with per-bucket update locks, in the manner of Triplett,
    McKenney & Walpole (SIGOPS OSR 2010 / USENIX ATC 2011) — the paper's
    example of the pre-Citrus state of the art: "at best, the data
    structure is partitioned into segments, e.g., buckets in a hash table,
    each guarded by a single lock".

    Readers traverse bucket chains wait-free (RCU-style: unlink is one
    atomic store, the GC plays the grace period's reclamation role);
    updates serialize per bucket. Contention among updaters therefore
    scales with the number of buckets but never within one.

    The table does not resize (the resizable algorithm is the 2011 paper's
    contribution and orthogonal here); pick [buckets] for the expected
    load. *)

type 'v t

val create : ?buckets:int -> unit -> 'v t
(** [buckets] is rounded up to a power of two (default 1024). *)

val contains : 'v t -> int -> 'v option
(** Wait-free. *)

val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

(** Quiescent-state helpers. *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list
(** Sorted by key (collected across buckets). *)

val attach_shadow : 'v t -> int -> Repro_sanitizer.Sanitizer.record option
(** Test hook for the reclamation sanitizer: attach a freshly registered
    shadow record to the node holding the key (None if absent). With the
    sanitizer armed, [contains] checks shadows on every node it visits —
    tests drive the record to [Reclaimed] and assert the traversal raises
    [Sanitizer.Violation]. Deletion here never touches shadows (the GC
    reclaims unlinked nodes, so there is no logical free to record);
    production runs therefore carry no shadows and pay one branch per
    visited node. *)

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** Every key hashes to the bucket that holds it; chains are sorted and
    duplicate-free; all bucket locks free. *)
