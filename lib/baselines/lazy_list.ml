module Spinlock = Repro_sync.Spinlock
module Backoff = Repro_sync.Backoff
module San = Repro_sanitizer.Sanitizer

type 'v node = {
  key : int;
  value : 'v option; (* None in sentinels *)
  next : 'v node option Atomic.t;
  marked : bool Atomic.t; (* read lock-free by contains/validation *)
  lock : Spinlock.t;
  mutable shadow : San.record option; (* attached by tests when sanitizing *)
}

type 'v t = { head : 'v node; san : San.domain }

let make_node key value next =
  {
    key;
    value;
    next = Atomic.make next;
    marked = Atomic.make false;
    lock = Spinlock.create ();
    shadow = None;
  }

let create () =
  let tail = make_node max_int None None in
  { head = make_node min_int None (Some tail); san = San.create "lazy_list" }

(* Unsynchronized search: (pred, curr) with pred.key < key <= curr.key.
   curr is never None (the tail sentinel has max_int). [check] runs on
   every node visited — the read path passes the sanitizer probe, update
   paths pass nothing (they revalidate under locks and may legitimately
   traverse nodes a test has marked reclaimed). *)
let find ?(check = fun _ -> ()) t key =
  let rec go pred =
    match Atomic.get pred.next with
    | None -> assert false (* only the tail has None, and tail.key = max_int *)
    | Some curr ->
        check curr;
        if curr.key < key then go curr else (pred, curr)
  in
  go t.head

let contains t key =
  let check n =
    if San.enabled () then Option.iter (fun s -> San.check s) n.shadow
  in
  let _, curr = find ~check t key in
  if curr.key = key && not (Atomic.get curr.marked) then curr.value else None

let mem t key = Option.is_some (contains t key)

let validate pred curr =
  (not (Atomic.get pred.marked))
  && (not (Atomic.get curr.marked))
  &&
  match Atomic.get pred.next with Some n -> n == curr | None -> false

let insert t key value =
  if key = min_int || key = max_int then
    invalid_arg "Lazy_list.insert: key collides with a sentinel";
  let b = Backoff.create () in
  let rec attempt () =
    let pred, curr = find t key in
    Spinlock.acquire pred.lock;
    Spinlock.acquire curr.lock;
    if validate pred curr then begin
      let result =
        if curr.key = key then false
        else begin
          Atomic.set pred.next (Some (make_node key (Some value) (Some curr)));
          true
        end
      in
      Spinlock.release curr.lock;
      Spinlock.release pred.lock;
      result
    end
    else begin
      Spinlock.release curr.lock;
      Spinlock.release pred.lock;
      Backoff.once b;
      attempt ()
    end
  in
  attempt ()

let delete t key =
  let b = Backoff.create () in
  let rec attempt () =
    let pred, curr = find t key in
    Spinlock.acquire pred.lock;
    Spinlock.acquire curr.lock;
    if validate pred curr then begin
      let result =
        if curr.key <> key then false
        else begin
          (* Logical deletion first, then physical unlink. *)
          Atomic.set curr.marked true;
          Atomic.set pred.next (Atomic.get curr.next);
          true
        end
      in
      Spinlock.release curr.lock;
      Spinlock.release pred.lock;
      result
    end
    else begin
      Spinlock.release curr.lock;
      Spinlock.release pred.lock;
      Backoff.once b;
      attempt ()
    end
  in
  attempt ()

(* Test hook: give the node holding [key] a shadow record registered in
   this list's sanitizer domain (None if the key is absent). *)
let attach_shadow t key =
  let _, curr = find t key in
  if curr.key = key && not (Atomic.get curr.marked) then begin
    let sh = San.register t.san in
    curr.shadow <- Some sh;
    Some sh
  end
  else None

(* --- Quiescent-state helpers --- *)

let fold f acc t =
  let rec go acc n =
    match Atomic.get n.next with
    | None -> acc
    | Some next ->
        let acc =
          match next.value with Some v -> f acc next.key v | None -> acc
        in
        go acc next
  in
  go acc t.head

let size t = fold (fun acc _ _ -> acc + 1) 0 t
let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  if t.head.key <> min_int then fail "head sentinel corrupted";
  let rec go n =
    if Atomic.get n.marked then fail "reachable node is marked";
    if Spinlock.is_locked n.lock then fail "reachable node is locked";
    match Atomic.get n.next with
    | None -> if n.key <> max_int then fail "list does not end at the tail"
    | Some next ->
        if next.key <= n.key then fail "keys not strictly increasing";
        go next
  in
  go t.head
