(* Benchmark harness regenerating every evaluation figure of the paper
   (Arbel & Attiya, PODC 2014, Section 5), plus micro-benchmarks and
   ablations. See EXPERIMENTS.md for the experiment index and the expected
   shapes.

     dune exec bench/main.exe                 -- everything, scaled down
     dune exec bench/main.exe -- fig8         -- RCU implementation impact
     dune exec bench/main.exe -- fig9         -- single-writer workload
     dune exec bench/main.exe -- fig10        -- the 2x3 throughput grid
     dune exec bench/main.exe -- micro        -- bechamel op latencies
     dune exec bench/main.exe -- gp           -- grace-period coalescing
     dune exec bench/main.exe -- ablation     -- restarts & grace periods
     dune exec bench/main.exe -- fig10 --paper  -- full paper-scale runs

   The container runs on a single core, so the thread sweep exercises
   algorithmic serialization (lock hold times, grace-period waits, retries)
   rather than parallel speedup; the *relative ranking* of the structures
   is the reproduced result. *)

module W = Repro_workload.Workload
module Runner = Repro_workload.Runner
module Report = Repro_workload.Report
module Json_report = Repro_workload.Json_report
module Json = Repro_obs.Json
module Dict = Repro_dict.Dict

(* JSON collection: when --json FILE is given, sweeps run observed
   (sampled latency + serialization metrics) and every data point is
   accumulated here, then written as one schema-versioned report. *)
let json_requested = ref false
let collected : Json_report.experiment list ref = ref []

let collect name points =
  if points <> [] then
    collected := { Json_report.name; points = List.rev points } :: !collected

type scale = {
  threads : int list;
  duration : float;
  repeats : int;
  small_range : int;
  large_range : int;
}

let default_scale =
  {
    threads = [ 1; 2; 4; 8 ];
    duration = 0.3;
    repeats = 1;
    small_range = 8_192;
    large_range = 65_536;
  }

(* The paper's setup: 5-second runs, 5 repetitions, key ranges 2*10^5 and
   2*10^6, up to 64 threads. *)
let paper_scale =
  {
    threads = [ 1; 4; 16; 64 ];
    duration = 5.0;
    repeats = 5;
    small_range = 200_000;
    large_range = 2_000_000;
  }

let sweep ?(out = Format.std_formatter) scale ~title ~csv ~role ~key_range
    dicts =
  let observe = !json_requested in
  let jpoints = ref [] in
  let series =
    List.map
      (fun (module D : Dict.DICT) ->
        let points =
          List.map
            (fun threads ->
              let cfg =
                W.config ~key_range ~role ~threads ~duration:scale.duration ()
              in
              let r =
                Runner.run_avg ~repeats:scale.repeats ~observe (module D) cfg
              in
              if observe then
                jpoints := { Json_report.cfg; result = r } :: !jpoints;
              (threads, r.Runner.throughput))
            scale.threads
        in
        { Report.label = D.name; points })
      dicts
  in
  collect title !jpoints;
  if csv then Report.print_csv ~out ~title ~threads:scale.threads series
  else Report.print_table ~out ~title ~threads:scale.threads series

(* --- Figure 8: Citrus over stock URCU vs the paper's new RCU --- *)

let fig8 scale csv =
  Format.printf
    "@.Figure 8: impact of the RCU implementation on Citrus@.\
     (50%% contains, key range %d; the urcu curve should collapse as@.\
     updaters serialize on the global grace-period lock)@."
    scale.small_range;
  sweep scale ~title:"fig8: citrus vs citrus-urcu (50% contains)" ~csv
    ~role:(W.Uniform W.contains_50) ~key_range:scale.small_range
    [
      (module Dict.Citrus_epoch);
      (module Dict.Citrus_urcu);
      (module Dict.Citrus_qsbr);
    ]

(* --- Figure 9: single writer, readers otherwise --- *)

let fig9 scale csv =
  Format.printf
    "@.Figure 9: single-writer workload (one thread 50%% insert / 50%%@.\
     delete, every other thread 100%% contains) - the setup that most@.\
     favours the coarse-grained RCU trees@.";
  List.iter
    (fun (label, range) ->
      sweep scale
        ~title:(Printf.sprintf "fig9: single writer, key range %s" label)
        ~csv
        ~role:(W.Single_writer W.update_only)
        ~key_range:range Dict.paper_set)
    [
      ("small", scale.small_range);
      ("large", scale.large_range);
    ]

(* --- Figure 10: the 2x3 grid --- *)

let fig10 scale csv =
  Format.printf
    "@.Figure 10: throughput under three operation distributions and two@.\
     key ranges. Expected shapes: 100%% contains favours the RCU trees;@.\
     at 98%% contains red-black and bonsai stop scaling (global write@.\
     lock); at 50%% contains Citrus pays synchronize_rcu but keeps pace@.\
     with the fine-grained trees.@.";
  List.iter
    (fun (range_label, range) ->
      List.iter
        (fun (mix_label, mix) ->
          sweep scale
            ~title:
              (Printf.sprintf "fig10: %s contains, key range %s" mix_label
                 range_label)
            ~csv ~role:(W.Uniform mix) ~key_range:range Dict.paper_set)
        [
          ("100%", W.read_only);
          ("98%", W.contains_98);
          ("50%", W.contains_50);
        ])
    [
      ("small", scale.small_range);
      ("large", scale.large_range);
    ]

(* --- Micro: bechamel single-thread operation latency --- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Format.printf
    "@.Micro-benchmark: single-thread operation latency (bechamel,@.\
     monotonic clock; one Test.make per structure and operation)@.";
  let tests =
    List.concat_map
      (fun (module D : Dict.DICT) ->
        let n = 4096 in
        let t = D.create () in
        let h = D.register t in
        (* Prefill the even keys in shuffled order — ascending insertion
           would degenerate the unbalanced trees into lists and measure
           shape, not synchronization. *)
        let evens = Array.init (n / 2) (fun i -> 2 * i) in
        let rng = Repro_sync.Rng.create 0xC0FFEEL in
        for i = Array.length evens - 1 downto 1 do
          let j = Repro_sync.Rng.int rng (i + 1) in
          let tmp = evens.(i) in
          evens.(i) <- evens.(j);
          evens.(j) <- tmp
        done;
        Array.iter (fun k -> ignore (D.insert h k k)) evens;
        let key = ref 0 in
        let contains_test =
          Test.make
            ~name:(D.name ^ "/contains")
            (Staged.stage (fun () ->
                 key := (!key + 7919) land (n - 1);
                 ignore (D.contains h !key)))
        in
        let update_test =
          Test.make
            ~name:(D.name ^ "/insert+delete")
            (Staged.stage (fun () ->
                 (* Odd keys are absent by construction: each cycle inserts
                    and deletes a key at a random in-range position. *)
                 key := (!key + 7919) land (n - 1);
                 let k = !key lor 1 in
                 ignore (D.insert h k k);
                 ignore (D.delete h k)))
        in
        [ contains_test; update_test ])
      Dict.all
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | Some _ | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-32s %12s@." "benchmark" "ns/op";
  List.iter (fun (name, ns) -> Format.printf "%-32s %12.1f@." name ns) rows

(* --- Latency percentiles --- *)

let latency scale =
  Format.printf
    "@.Operation latency percentiles (ns), %d threads, 50%% contains, key@.\
     range %d. Watch the delete p99: Citrus deletes of two-child nodes@.\
     pay a full grace period; structures without grace periods do not.@."
    (List.fold_left max 1 scale.threads)
    scale.small_range;
  let threads = List.fold_left max 1 scale.threads in
  Format.printf "%-12s %-9s %10s %10s %10s %10s %10s@." "structure" "op"
    "mean" "p50" "p99" "p99.9" "max";
  List.iter
    (fun (module D : Dict.DICT) ->
      let cfg =
        W.config ~key_range:scale.small_range ~threads
          ~duration:scale.duration ~role:(W.Uniform W.contains_50) ()
      in
      let per_op = Repro_workload.Latency.measure (module D) cfg in
      List.iter
        (fun (op, s) ->
          let op_name =
            match op with
            | W.Contains -> "contains"
            | W.Insert -> "insert"
            | W.Delete -> "delete"
          in
          Format.printf "%-12s %-9s %10.0f %10.0f %10.0f %10.0f %10.0f@."
            D.name op_name s.Repro_workload.Latency.mean_ns
            s.Repro_workload.Latency.p50 s.Repro_workload.Latency.p99
            s.Repro_workload.Latency.p999 s.Repro_workload.Latency.max_ns)
        per_op)
    Dict.all

(* --- Throughput over time --- *)

let timeline scale =
  Format.printf
    "@.Throughput over time (20ms samples, delete-heavy workload): stalls@.\
     from long grace periods show as dips. Bars normalized per row.@.";
  let threads = List.fold_left max 1 scale.threads in
  List.iter
    (fun (module D : Dict.DICT) ->
      let cfg =
        W.config ~key_range:2_048 ~threads
          ~duration:(Float.max scale.duration 0.5)
          ~role:(W.Uniform (W.mix ~contains:20 ~insert:40 ~delete:40))
          ()
      in
      let r = Runner.run ~sample_interval:0.02 (module D) cfg in
      let peak =
        List.fold_left (fun m (_, v) -> Float.max m v) 1.0 r.Runner.samples
      in
      let bar v =
        let w = int_of_float (v /. peak *. 30.0) in
        String.make (max 0 w) '#'
      in
      Format.printf "%-12s peak %8s ops/s@." D.name (Report.si peak);
      List.iter
        (fun (at, v) ->
          Format.printf "  %5.2fs %8s %s@." at (Report.si v) (bar v))
        r.Runner.samples)
    [ (module Dict.Citrus_epoch); (module Dict.Citrus_urcu) ]

(* --- Skewed access (Zipfian) extension --- *)

let skew scale =
  Format.printf
    "@.Skewed access: throughput under Zipfian key popularity (50%%@.\
     contains, %d threads, key range %d). Hot keys concentrate lock and@.\
     restart contention on a few nodes; structures whose updates touch@.\
     more nodes (balancing, towers) suffer more.@."
    (List.fold_left max 1 scale.threads)
    scale.small_range;
  let threads = List.fold_left max 1 scale.threads in
  let observe = !json_requested in
  let jpoints = ref [] in
  let dists =
    [
      ("uniform", W.Uniform_keys);
      ("zipf-0.5", W.Zipf 0.5);
      ("zipf-0.9", W.Zipf 0.9);
      ("zipf-0.99", W.Zipf 0.99);
    ]
  in
  Format.printf "%-14s" "distribution";
  List.iter (fun (l, _) -> Format.printf " %9s" l) dists;
  Format.printf "@.";
  List.iter
    (fun (module D : Dict.DICT) ->
      Format.printf "%-14s" D.name;
      List.iter
        (fun (_, dist) ->
          let cfg =
            W.config ~key_range:scale.small_range ~key_dist:dist ~threads
              ~duration:scale.duration ()
          in
          let r =
            Runner.run_avg ~repeats:scale.repeats ~observe (module D) cfg
          in
          if observe then
            jpoints := { Json_report.cfg; result = r } :: !jpoints;
          Format.printf " %9s" (Report.si r.Runner.throughput))
        dists;
      Format.printf "@.")
    Dict.paper_set;
  collect "skew: Zipfian key popularity (50% contains)" !jpoints

(* --- RCU flavour comparison (read-side and grace-period costs) --- *)

let rcu_bench scale =
  Format.printf
    "@.RCU flavour comparison: read-side critical section cost (1 thread)@.\
     and synchronize throughput against a fixed reader population.@.";
  Format.printf "%-12s %18s %22s@." "flavour" "read cycle (ns)"
    "synchronize/s (2 readers)";
  List.iter
    (fun (name, (module R : Repro_rcu.Rcu.S)) ->
      (* Read-side cost: tight read_lock/read_unlock loop. *)
      let r = R.create () in
      let th = R.register r in
      let iters = 2_000_000 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        R.read_lock th;
        R.read_unlock th
      done;
      let read_ns =
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
      in
      R.unregister th;
      (* Grace-period throughput with active readers. *)
      let r = R.create () in
      let stop = Atomic.make false in
      let readers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let th = R.register r in
                while not (Atomic.get stop) do
                  R.read_lock th;
                  Domain.cpu_relax ();
                  R.read_unlock th
                done;
                R.unregister th))
      in
      let th = R.register r in
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. scale.duration in
      let gps = ref 0 in
      while Unix.gettimeofday () < deadline do
        R.synchronize r;
        incr gps
      done;
      let wall = Unix.gettimeofday () -. t0 in
      Atomic.set stop true;
      List.iter Domain.join readers;
      R.unregister th;
      Format.printf "%-12s %18.1f %22.0f@." name read_ns
        (float_of_int !gps /. wall))
    Repro_rcu.Rcu.implementations;
  Format.printf
    "@.Node-lock comparison: uncontended acquire/release cycle (ns).@.";
  let iters = 2_000_000 in
  let tas = Repro_sync.Spinlock.create () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Repro_sync.Spinlock.acquire tas;
    Repro_sync.Spinlock.release tas
  done;
  let tas_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  let ticket = Repro_sync.Ticket_lock.create () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Repro_sync.Ticket_lock.acquire ticket;
    Repro_sync.Ticket_lock.release ticket
  done;
  let ticket_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  Format.printf "  test-and-set spinlock : %6.1f@." tas_ns;
  Format.printf "  ticket lock           : %6.1f@." ticket_ns

(* --- Grace-period coalescing microbenchmark --- *)

type gp_point = {
  gp_flavour : string;
  gp_syncers : int;
  gp_coalescing : bool;
  gp_sync_per_s : float;
  gp_returns : int; (* synchronize calls that returned (grace_periods) *)
  gp_coalesced : int; (* of which piggybacked on another's grace period *)
}

let gp_readers = 2

(* Slot-registry width for the benchmark instances. A synchronize scan
   walks every registry slot, so a wide registry puts the scan in the
   CPU-bound regime the coalescing machinery targets: the cost of a grace
   period is the walk itself, not waiting out a reader — which is also the
   regime of a large deployment (many registered threads, short critical
   sections). In the wait-bound regime concurrent scans overlap and share
   their waits, so coalescing saves CPU rather than wall-clock and a
   single-core A/B cannot resolve it. *)
let gp_capacity = 262_144

(* One measured interval: [syncers] domains calling synchronize back to
   back against [gp_readers] domains taking brief read-side critical
   sections (in-section ~1% of the time, so scans only occasionally wait),
   with coalescing forced on or off via the process-global switch. *)
let gp_measure (module R : Repro_rcu.Rcu.S) ~syncers ~duration ~coalescing =
  Repro_rcu.Rcu.Gp.set_coalescing coalescing;
  Repro_sync.Metrics.reset ();
  let r = R.create ~max_threads:gp_capacity () in
  let stop = Atomic.make false in
  let bar = Repro_sync.Barrier.create (syncers + gp_readers + 1) in
  let readers =
    List.init gp_readers (fun _ ->
        Domain.spawn (fun () ->
            let th = R.register r in
            Repro_sync.Barrier.wait bar;
            while not (Atomic.get stop) do
              R.read_lock th;
              for _ = 1 to 20 do
                Domain.cpu_relax ()
              done;
              R.read_unlock th;
              (* Sleep, don't spin, between sections: the readers' job here
                 is to exist (populating slots and occasionally blocking a
                 scan), not to compete with the synchronizers for the
                 core. Their frequent wakes double as the preemption
                 source that lets woken piggybackers slip in behind an
                 in-flight scan. *)
              Unix.sleepf 200e-6
            done;
            R.unregister th))
  in
  let syncer_domains =
    List.init syncers (fun _ ->
        Domain.spawn (fun () ->
            Repro_sync.Barrier.wait bar;
            let n = ref 0 in
            while not (Atomic.get stop) do
              R.synchronize r;
              incr n
            done;
            !n))
  in
  Repro_sync.Barrier.wait bar;
  let t0 = Unix.gettimeofday () in
  Unix.sleepf duration;
  Atomic.set stop true;
  let total =
    List.fold_left (fun acc d -> acc + Domain.join d) 0 syncer_domains
  in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter Domain.join readers;
  let snap = Repro_sync.Metrics.snapshot () in
  let get k = try int_of_float (List.assoc k snap) with Not_found -> 0 in
  {
    gp_flavour = R.name;
    gp_syncers = syncers;
    gp_coalescing = coalescing;
    gp_sync_per_s = float_of_int total /. wall;
    gp_returns = get "grace_periods";
    gp_coalesced = get "sync_coalesced";
  }

let gp_point_json p =
  Json.Obj
    [
      ("flavour", Json.String p.gp_flavour);
      ("syncers", Json.Int p.gp_syncers);
      ("readers", Json.Int gp_readers);
      ("coalescing", Json.Bool p.gp_coalescing);
      ("sync_per_s", Json.Float p.gp_sync_per_s);
      ("grace_periods", Json.Int p.gp_returns);
      ("sync_coalesced", Json.Int p.gp_coalesced);
    ]

(* The gp report does not carry workload points, so it is assembled here
   rather than through [Json_report.report] — but with the same top-level
   schema fields (schema_version / generator / generated_at_unix /
   experiments) so trajectory tooling can ingest both. *)
let gp_json ~duration points =
  Json.Obj
    [
      ("schema_version", Json.Int Json_report.schema_version);
      ("generator", Json.String "citrus-repro bench");
      ("generated_at_unix", Json.Float (Unix.gettimeofday ()));
      ( "meta",
        Json.Obj
          [
            ("benchmark", Json.String "gp");
            ("readers", Json.Int gp_readers);
            ("duration_s", Json.Float duration);
          ] );
      ( "experiments",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "gp: grace-period coalescing");
                ("points", Json.List (List.map gp_point_json points));
              ];
          ] );
    ]

let gp_bench scale quick json =
  let duration = if quick then 0.05 else Float.max scale.duration 1.0 in
  let sweeps = if quick then [ 2; 4 ] else scale.threads in
  (* Median of several intervals per cell: a single interval wobbles
     +/-10% under scheduler noise on few cores, which matters when the
     point of the table is an A/B ratio. *)
  let reps = if quick then 1 else max scale.repeats 3 in
  let measure (module R : Repro_rcu.Rcu.S) ~syncers ~coalescing =
    let runs =
      List.init reps (fun _ ->
          gp_measure (module R) ~syncers ~duration ~coalescing)
    in
    let sorted =
      List.sort (fun a b -> compare a.gp_sync_per_s b.gp_sync_per_s) runs
    in
    List.nth sorted (reps / 2)
  in
  Format.printf
    "@.Grace-period coalescing: N domains calling synchronize back to@.\
     back against %d readers, with the coalescing machinery on vs off.@.\
     Expected: the uncoalesced rate decays with N (every call drives its@.\
     own scan) while the coalesced rate holds or grows (calls piggyback@.\
     on grace periods already in flight).@."
    gp_readers;
  Format.printf "%-10s %8s %14s %14s %8s %11s@." "flavour" "syncers"
    "plain/s" "coalesced/s" "speedup" "coalesced%";
  let points = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Repro_rcu.Rcu.Gp.set_coalescing true;
      Repro_sync.Metrics.reset ())
    (fun () ->
      List.iter
        (fun (_, (module R : Repro_rcu.Rcu.S)) ->
          List.iter
            (fun syncers ->
              let off = measure (module R) ~syncers ~coalescing:false in
              let on_ = measure (module R) ~syncers ~coalescing:true in
              points := on_ :: off :: !points;
              let speedup = on_.gp_sync_per_s /. Float.max off.gp_sync_per_s 1. in
              let frac =
                100.
                *. float_of_int on_.gp_coalesced
                /. float_of_int (max on_.gp_returns 1)
              in
              Format.printf "%-10s %8d %14s %14s %7.2fx %10.1f%%@." R.name
                syncers
                (Report.si off.gp_sync_per_s)
                (Report.si on_.gp_sync_per_s)
                speedup frac)
            sweeps)
        Repro_rcu.Rcu.implementations);
  match json with
  | None -> ()
  | Some file -> (
      let doc = gp_json ~duration (List.rev !points) in
      match Json_report.write file doc with
      | () ->
          Format.printf "wrote JSON report: %s (%d points)@." file
            (List.length !points)
      | exception Sys_error msg ->
          Format.eprintf "cannot write JSON report: %s@." msg;
          exit 1)

(* --- Ablations --- *)

let ablation scale =
  Format.printf
    "@.Ablation A1: Citrus validation restarts and two-child deletes@.\
     (the cost drivers of the design: restart rate shows tag/mark@.\
     validation work, two-child deletes count grace periods paid)@.";
  Format.printf "%8s %12s %12s %12s %12s %14s@." "threads" "ops/s" "restarts"
    "1child-del" "2child-del" "grace-periods";
  let module T = Repro_citrus.Citrus_int.Epoch in
  List.iter
    (fun threads ->
      let key_range = 1024 in
      let t = T.create ~max_threads:(threads + 1) () in
      let setup = T.register t in
      for k = 0 to (key_range / 2) - 1 do
        ignore (T.insert setup (2 * k) k)
      done;
      let stop = Atomic.make false in
      let bar = Repro_sync.Barrier.create (threads + 1) in
      let ops = Repro_sync.Stats.create "ops" in
      let workers =
        List.init threads (fun i ->
            Domain.spawn (fun () ->
                let h = T.register t in
                let rng = Repro_sync.Rng.create (Int64.of_int (i + 1)) in
                Repro_sync.Barrier.wait bar;
                let n = ref 0 in
                while not (Atomic.get stop) do
                  let k = Repro_sync.Rng.int rng key_range in
                  (match Repro_sync.Rng.int rng 4 with
                  | 0 -> ignore (T.insert h k k)
                  | 1 -> ignore (T.delete h k)
                  | _ -> ignore (T.mem h k));
                  incr n
                done;
                Repro_sync.Stats.add ops i !n;
                T.unregister h))
      in
      Repro_sync.Barrier.wait bar;
      Unix.sleepf scale.duration;
      Atomic.set stop true;
      List.iter Domain.join workers;
      let stats = T.stats t in
      let get name = try List.assoc name stats with Not_found -> 0 in
      Format.printf "%8d %12s %12d %12d %12d %14d@." threads
        (Report.si
           (float_of_int (Repro_sync.Stats.read ops) /. scale.duration))
        (get "restarts")
        (get "deletes_one_child")
        (get "deletes_two_children")
        (get "grace_periods");
      T.unregister setup)
    scale.threads;
  Format.printf
    "@.Ablation A2: grace-period cost - delete/insert-only workload@.\
     (every two-child delete waits for readers; epoch-rcu vs urcu)@.";
  sweep scale ~title:"ablation: update-only (50% insert / 50% delete)"
    ~csv:false
    ~role:(W.Uniform W.update_only)
    ~key_range:1024
    [ (module Dict.Citrus_epoch); (module Dict.Citrus_urcu) ];
  Format.printf
    "@.Ablation A3: maintenance rebalancing (the paper's future work #1).@.\
     Keys arrive in ascending order - the worst case for an unbalanced@.\
     tree. One extra domain runs relativistic maintenance rotations@.\
     concurrently with the updaters and readers.@.";
  Format.printf "%14s %10s %8s %10s@." "configuration" "lookups/s" "height"
    "rotations";
  let module T = Repro_citrus.Citrus_int.Epoch in
  List.iter
    (fun maintained ->
      let t = T.create ~max_threads:8 () in
      let n_keys = 20_000 in
      let stop = Atomic.make false in
      let maintenance =
        if maintained then
          Some
            (Domain.spawn (fun () ->
                 let h = T.register t in
                 while not (Atomic.get stop) do
                   if T.maintenance_pass h = 0 then Unix.sleepf 0.001
                 done;
                 T.unregister h))
        else None
      in
      let inserter =
        Domain.spawn (fun () ->
            let h = T.register t in
            for k = 1 to n_keys do
              ignore (T.insert h k k)
            done;
            T.unregister h)
      in
      let lookups = Atomic.make 0 in
      let reader =
        Domain.spawn (fun () ->
            let h = T.register t in
            let rng = Repro_sync.Rng.create 5L in
            while not (Atomic.get stop) do
              ignore (T.mem h (1 + Repro_sync.Rng.int rng n_keys));
              Atomic.incr lookups
            done;
            T.unregister h)
      in
      Domain.join inserter;
      (* Measure lookups only after the insert phase (and in the
         maintained configuration, after the tree has settled). *)
      let before = Atomic.get lookups in
      let t0 = Unix.gettimeofday () in
      Unix.sleepf scale.duration;
      let measured = Atomic.get lookups - before in
      let wall = Unix.gettimeofday () -. t0 in
      Atomic.set stop true;
      Domain.join reader;
      (match maintenance with Some d -> Domain.join d | None -> ());
      let s = T.stats t in
      Format.printf "%14s %10s %8d %10d@."
        (if maintained then "maintained" else "plain")
        (Report.si (float_of_int measured /. wall))
        (T.height t)
        (List.assoc "rotations" s))
    [ false; true ]

(* Update-contention sweep: the paper notes the URCU collapse "was observed
   under different update contention"; this regenerates that observation. *)
let contention scale =
  Format.printf
    "@.Update-contention sweep at %d threads, key range %d: throughput as@.\
     the update fraction grows (papers' claim: the URCU gap widens with@.\
     contention, the epoch-RCU Citrus degrades gracefully).@."
    (List.fold_left max 1 scale.threads)
    scale.small_range;
  let threads = List.fold_left max 1 scale.threads in
  let observe = !json_requested in
  let jpoints = ref [] in
  Format.printf "%-14s" "updates%";
  List.iter (fun u -> Format.printf " %9d" u) [ 0; 2; 10; 20; 50; 100 ];
  Format.printf "@.";
  List.iter
    (fun (module D : Dict.DICT) ->
      Format.printf "%-14s" D.name;
      List.iter
        (fun updates ->
          let mix =
            W.mix ~contains:(100 - updates)
              ~insert:((updates / 2) + (updates mod 2))
              ~delete:(updates / 2)
          in
          let cfg =
            W.config ~key_range:scale.small_range ~role:(W.Uniform mix)
              ~threads ~duration:scale.duration ()
          in
          let r =
            Runner.run_avg ~repeats:scale.repeats ~observe (module D) cfg
          in
          if observe then
            jpoints := { Json_report.cfg; result = r } :: !jpoints;
          Format.printf " %9s" (Report.si r.Runner.throughput))
        [ 0; 2; 10; 20; 50; 100 ];
      Format.printf "@.")
    [
      (module Dict.Citrus_epoch);
      (module Dict.Citrus_urcu);
      (module Dict.Nm);
      (module Dict.Skiplist);
    ];
  collect "contention: throughput vs update fraction" !jpoints

(* Serving benchmark: the sharded service under saturating open-loop
   load, sweeping the shard count. The interesting number is aggregate
   write throughput (operations drained per second): with one shard every
   grace period a two-child delete pays stalls the whole write path,
   while with N shards only the paying shard stalls and the other
   updaters keep draining. See SERVING.md. *)
let serve_bench scale quick json =
  let module Serve = Repro_server.Serve in
  let module Open_loop = Repro_workload.Open_loop in
  let duration = if quick then 0.2 else Float.max scale.duration 1.0 in
  let shard_counts = if quick then [ 1; 2 ] else [ 1; 4; 8 ] in
  (* The configuration that makes the unsharded baseline grace-period
     bound, so sharding has something real to fix: citrus-urcu (whose
     synchronize pays reader flips, the paper's expensive flavour), a
     deep tree (long traversals = long read sections = long grace
     periods), an update-heavy mix (every two-child delete pays a grace
     period), and an offered load far above capacity so the queues never
     run dry — drained/s measures service capacity. *)
  let mix = W.mix ~contains:30 ~insert:35 ~delete:35 in
  let key_range = 32_768 in
  let rate = if quick then 50_000.0 else 400_000.0 in
  Format.printf
    "@.Serving: open-loop load on the sharded citrus-urcu service (async@.\
     writes, %s offered ops/s, 30%%c/35%%i/35%%d on %d keys), sweeping@.\
     shards. Shard 1 is the unsharded baseline: one tree, one updater,@.\
     every two-child-delete grace period stalls the entire write path;@.\
     with N shards a grace period stalls only its own shard and the@.\
     other updaters keep draining.@."
    (Report.si rate) key_range;
  Format.printf "%7s %12s %12s %12s %10s %14s %14s@." "shards" "offered/s"
    "achieved/s" "drained/s" "drops" "contains-p99" "write-p99";
  let results =
    List.map
      (fun shards ->
        let c =
          Serve.cfg ~shards ~clients:4 ~queue_depth:4096 ~drain_batch:64
            ~rate ~duration ~mix ~key_range ~write_mode:Serve.Async ()
        in
        let r = Serve.run ~observe:true (module Dict.Citrus_urcu) c in
        let l = r.Serve.load in
        let pct op =
          match List.assoc_opt op l.Open_loop.latency with
          | Some h ->
              (Repro_workload.Latency.summarize h).Repro_workload.Latency.p99
          | None -> 0.
        in
        Format.printf "%7d %12s %12s %12s %10d %12.0fns %12.0fns@." shards
          (Report.si l.Open_loop.offered)
          (Report.si l.Open_loop.achieved)
          (Report.si r.Serve.write_throughput)
          l.Open_loop.dropped (pct W.Contains) (pct W.Insert);
        r)
      shard_counts
  in
  (match (results, List.rev results) with
  | one :: _, many :: _ when one != many ->
      Format.printf
        "@.aggregate write throughput: %s/s at %d shards vs %s/s at %d \
         shards (%.2fx)@."
        (Report.si many.Serve.write_throughput)
        many.Serve.cfg.Serve.shards
        (Report.si one.Serve.write_throughput)
        one.Serve.cfg.Serve.shards
        (many.Serve.write_throughput /. Float.max one.Serve.write_throughput 1.)
  | _ -> ());
  match json with
  | None -> ()
  | Some file -> (
      let doc =
        Serve.report ~name:"serve: write throughput vs shards" results
      in
      match Json_report.write file doc with
      | () ->
          Format.printf "wrote JSON report: %s (%d points)@." file
            (List.length results)
      | exception Sys_error msg ->
          Format.eprintf "cannot write JSON report: %s@." msg;
          exit 1)

(* --- call_rcu: inline grace-period waits vs background reclamation ---

   A/B over the process-global [Reclaimer] switch, three experiments in
   one schema-v1 report (committed as BENCH_fig9.json):

   1. fig9-style write-heavy updater throughput on Citrus: the
      single-writer update-only role, where every two-child delete pays
      a grace period inline — or hands it to the reclaimer and moves on.
   2. The grace-period-bound serving configuration (citrus-urcu, one
      shard, async writes): write p99 is dominated by the updater
      stalling on synchronize mid-drain; call_rcu takes that stall off
      the drain loop.
   3. The read side, which must NOT change: read_lock/read_unlock cycle
      rate over the (cache-line-padded) reader-slot registry, sweeping
      reader counts so false sharing on the slot array would show as a
      super-linear per-cycle cost. *)

let callrcu_ab on f =
  let module Rec = Repro_rcu.Reclaimer in
  let was = Rec.call_rcu_enabled () in
  Rec.set_call_rcu on;
  Fun.protect ~finally:(fun () -> Rec.set_call_rcu was) f

let callrcu_label on = if on then "call_rcu" else "inline"

(* Median-of-[reps] by [key]: these are A/B ratios on a noisy box. *)
let median reps key runs =
  ignore reps;
  let sorted = List.sort (fun a b -> compare (key a) (key b)) runs in
  List.nth sorted (List.length sorted / 2)

let callrcu_fig9 ~duration ~reps ~threads_list =
  let key_range = 8_192 in
  Format.printf
    "@.call_rcu A: fig9-style write-heavy Citrus (single writer, 50%%@.\
     insert / 50%% delete, other threads 100%% contains, %d keys).@.\
     updater/s counts the writer's operations only — the thread whose@.\
     grace-period waits call_rcu removes. The more readers, the longer@.\
     each grace period and the bigger the updater's win: the reclaimer@.\
     amortizes one wait over a whole batch of retirements where the@.\
     inline updater pays one per two-child delete.@."
    key_range;
  Format.printf "%-12s %8s %10s %12s %12s %12s %12s@." "structure" "threads"
    "config" "ops/s" "updater/s" "gps" "enqueued";
  List.concat_map
    (fun (module D : Dict.DICT) ->
      List.concat_map
        (fun threads ->
          let cfg =
            W.config ~key_range
              ~role:(W.Single_writer W.update_only)
              ~threads ~duration ()
          in
          List.map
            (fun on ->
              let runs =
                List.init reps (fun i ->
                    callrcu_ab on (fun () ->
                        Repro_sync.Metrics.reset ();
                        Runner.run ~observe:true
                          (module D)
                          { cfg with seed = Int64.of_int (97 + i) }))
              in
              let updater r =
                float_of_int (r.Runner.insert_ops + r.Runner.delete_ops)
                /. r.Runner.wall
              in
              let r = median reps updater runs in
              let met k =
                try List.assoc k r.Runner.metrics with Not_found -> 0.
              in
              Format.printf "%-12s %8d %10s %12s %12s %12.0f %12.0f@." D.name
                threads (callrcu_label on)
                (Report.si r.Runner.throughput)
                (Report.si (updater r))
                (met "grace_periods")
                (met "call_rcu_enqueued");
              Json.Obj
                [
                  ("structure", Json.String D.name);
                  ("config", Json.String (callrcu_label on));
                  ("threads", Json.Int threads);
                  ("key_range", Json.Int key_range);
                  ("duration_s", Json.Float duration);
                  ("total_ops_per_s", Json.Float r.Runner.throughput);
                  ("updater_ops_per_s", Json.Float (updater r));
                  ("insert_ops", Json.Int r.Runner.insert_ops);
                  ("delete_ops", Json.Int r.Runner.delete_ops);
                  ("grace_periods", Json.Float (met "grace_periods"));
                  ("call_rcu_enqueued", Json.Float (met "call_rcu_enqueued"));
                  ("reclaim_batches", Json.Float (met "reclaim_batches"));
                ])
            [ false; true ])
        threads_list)
    [ (module Dict.Citrus_urcu); (module Dict.Citrus_epoch) ]

let callrcu_serve ~duration ~reps ~rate =
  let module Serve = Repro_server.Serve in
  let module Open_loop = Repro_workload.Open_loop in
  let mix = W.mix ~contains:30 ~insert:35 ~delete:35 in
  let key_range = 32_768 in
  Format.printf
    "@.call_rcu B: the grace-period-bound serving configuration@.\
     (citrus-urcu, 1 shard, async writes, %s offered ops/s,@.\
     30%%c/35%%i/35%%d on %d keys): write p99 is queueing delay behind@.\
     an updater that stalls on synchronize mid-drain.@."
    (Report.si rate) key_range;
  Format.printf "%10s %12s %12s %14s %14s@." "config" "achieved/s" "drained/s"
    "write-p50" "write-p99";
  List.map
    (fun on ->
      let runs =
        List.init reps (fun _ ->
            callrcu_ab on (fun () ->
                let c =
                  Serve.cfg ~shards:1 ~clients:4 ~queue_depth:4096
                    ~drain_batch:64 ~rate ~duration ~mix ~key_range
                    ~write_mode:Serve.Async ()
                in
                Serve.run ~observe:true (module Dict.Citrus_urcu) c))
      in
      let summary r op =
        match List.assoc_opt op r.Serve.load.Open_loop.latency with
        | Some h -> Repro_workload.Latency.summarize h
        | None ->
            Repro_workload.Latency.summarize (Repro_workload.Latency.histogram ())
      in
      let p99 r = (summary r W.Insert).Repro_workload.Latency.p99 in
      let r = median reps p99 runs in
      let ins = summary r W.Insert in
      Format.printf "%10s %12s %12s %12.0fns %12.0fns@." (callrcu_label on)
        (Report.si r.Serve.load.Open_loop.achieved)
        (Report.si r.Serve.write_throughput)
        ins.Repro_workload.Latency.p50 ins.Repro_workload.Latency.p99;
      Json.Obj
        [
          ("config", Json.String (callrcu_label on));
          ("structure", Json.String "citrus-urcu");
          ("shards", Json.Int 1);
          ("offered_per_s", Json.Float rate);
          ("duration_s", Json.Float duration);
          ("achieved_per_s", Json.Float r.Serve.load.Open_loop.achieved);
          ("drained_per_s", Json.Float r.Serve.write_throughput);
          ("write_p50_ns", Json.Float ins.Repro_workload.Latency.p50);
          ("write_p99_ns", Json.Float ins.Repro_workload.Latency.p99);
          ( "contains_p99_ns",
            Json.Float (summary r W.Contains).Repro_workload.Latency.p99 );
        ])
    [ false; true ]

(* Read-side registry cycles: [readers] domains doing empty
   read_lock/read_unlock sections flat out. Each cycle hits the
   registering domain's slot in the reader registry; with the slots
   padded to cache lines the per-cycle cost should hold roughly flat as
   readers are added (modulo scheduling on few cores), where unpadded
   neighbours would drag each other's lines. *)
let callrcu_readside ~duration ~readers_list =
  let module R = Repro_rcu.Epoch_rcu in
  Format.printf
    "@.call_rcu C: read-side registry cycles (empty read_lock/unlock@.\
     sections; the reader-slot registry entries are padded to cache@.\
     lines — per-cycle cost should stay flat as readers are added).@.";
  Format.printf "%8s %14s %12s@." "readers" "cycles/s" "ns/cycle";
  List.map
    (fun readers ->
      let r = R.create ~max_threads:(readers + 1) () in
      let stop = Atomic.make false in
      let bar = Repro_sync.Barrier.create (readers + 1) in
      let domains =
        List.init readers (fun _ ->
            Domain.spawn (fun () ->
                let th = R.register r in
                Repro_sync.Barrier.wait bar;
                let n = ref 0 in
                while not (Atomic.get stop) do
                  R.read_lock th;
                  R.read_unlock th;
                  incr n
                done;
                R.unregister th;
                !n))
      in
      Repro_sync.Barrier.wait bar;
      let t0 = Unix.gettimeofday () in
      Unix.sleepf duration;
      Atomic.set stop true;
      let total = List.fold_left (fun a d -> a + Domain.join d) 0 domains in
      let wall = Unix.gettimeofday () -. t0 in
      let per_s = float_of_int total /. wall in
      let ns_per_cycle =
        wall *. 1e9 *. float_of_int readers /. float_of_int (max total 1)
      in
      Format.printf "%8d %14s %12.1f@." readers (Report.si per_s) ns_per_cycle;
      Json.Obj
        [
          ("readers", Json.Int readers);
          ("duration_s", Json.Float duration);
          ("cycles_per_s", Json.Float per_s);
          ("ns_per_cycle", Json.Float ns_per_cycle);
        ])
    readers_list

let callrcu_json ~meta experiments =
  Json.Obj
    [
      ("schema_version", Json.Int Json_report.schema_version);
      ("generator", Json.String "citrus-repro bench");
      ("generated_at_unix", Json.Float (Unix.gettimeofday ()));
      ("meta", Json.Obj meta);
      ( "experiments",
        Json.List
          (List.map
             (fun (name, points) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("points", Json.List points);
                 ])
             experiments) );
    ]

let callrcu_bench scale quick json =
  let duration = if quick then 0.15 else Float.max scale.duration 1.0 in
  let reps = if quick then 1 else max scale.repeats 3 in
  (* At least one reader: this is fig9's single-writer-plus-readers
     regime, where grace periods have someone to wait for. *)
  let threads_list = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let rate = if quick then 30_000.0 else 150_000.0 in
  let fig9_points = callrcu_fig9 ~duration ~reps ~threads_list in
  let serve_points = callrcu_serve ~duration ~reps ~rate in
  let read_points =
    callrcu_readside
      ~duration:(Float.min duration 0.5)
      ~readers_list:(if quick then [ 1; 2 ] else [ 1; 2; 4 ])
  in
  match json with
  | None -> ()
  | Some file -> (
      let doc =
        callrcu_json
          ~meta:
            [
              ("benchmark", Json.String "callrcu");
              ("duration_s", Json.Float duration);
              ("repeats", Json.Int reps);
            ]
          [
            ("callrcu: fig9 write-heavy updater throughput", fig9_points);
            ("callrcu: serve write p99, 1 shard citrus-urcu", serve_points);
            ("callrcu: read-side registry cycles", read_points);
          ]
      in
      match Json_report.write file doc with
      | () ->
          Format.printf "wrote JSON report: %s (%d points)@." file
            (List.length fig9_points + List.length serve_points
           + List.length read_points)
      | exception Sys_error msg ->
          Format.eprintf "cannot write JSON report: %s@." msg;
          exit 1)

(* --- command line --- *)

open Cmdliner

let scale_term =
  let paper =
    Arg.(value & flag & info [ "paper" ] ~doc:"Run at full paper scale (5s x 5 repeats, key ranges 2e5/2e6, up to 64 threads). Hours of runtime.")
  in
  let threads =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "threads" ] ~docv:"N,N,.." ~doc:"Thread counts to sweep.")
  in
  let duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Timed seconds per run.")
  in
  let repeats =
    Arg.(
      value
      & opt (some int) None
      & info [ "repeats" ] ~docv:"N" ~doc:"Repetitions averaged per point.")
  in
  let combine paper threads duration repeats =
    let base = if paper then paper_scale else default_scale in
    {
      base with
      threads = Option.value threads ~default:base.threads;
      duration = Option.value duration ~default:base.duration;
      repeats = Option.value repeats ~default:base.repeats;
    }
  in
  Term.(const combine $ paper $ threads $ duration $ repeats)

let csv_term =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")

let json_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a schema-versioned JSON report to $(docv). Sweep points \
           then run observed: sampled latency percentiles and \
           serialization metrics (grace periods, lock contention, \
           restarts) accompany every throughput number. Schema in \
           OBSERVABILITY.md.")

let scale_meta scale =
  [
    ( "scale",
      Json.Obj
        [
          ("threads", Json.List (List.map (fun t -> Json.Int t) scale.threads));
          ("duration_s", Json.Float scale.duration);
          ("repeats", Json.Int scale.repeats);
          ("small_range", Json.Int scale.small_range);
          ("large_range", Json.Int scale.large_range);
        ] );
  ]

let finish scale json =
  match json with
  | None -> ()
  | Some file -> (
      let doc = Json_report.report ~meta:(scale_meta scale) (List.rev !collected) in
      match Json_report.write file doc with
      | () ->
          Format.printf "wrote JSON report: %s (%d experiments)@." file
            (List.length !collected)
      | exception Sys_error msg ->
          Format.eprintf "cannot write JSON report: %s@." msg;
          exit 1)

let wrap f scale csv json =
  json_requested := json <> None;
  f scale csv;
  finish scale json

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (wrap f) $ scale_term $ csv_term $ json_term)

let run_all scale csv =
  fig8 scale csv;
  fig9 scale csv;
  fig10 scale csv;
  ablation scale;
  contention scale;
  skew scale;
  rcu_bench scale;
  latency scale;
  micro ()

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (default).")
    Term.(const (wrap run_all) $ scale_term $ csv_term $ json_term)

let micro_cmd =
  Cmd.v (Cmd.info "micro" ~doc:"Bechamel single-thread latencies.")
    Term.(const (fun _ _ -> micro ()) $ scale_term $ csv_term)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"Citrus restart/grace-period ablations.")
    Term.(const (fun scale _ -> ablation scale) $ scale_term $ csv_term)

let latency_cmd =
  Cmd.v
    (Cmd.info "latency" ~doc:"Per-operation latency percentiles.")
    Term.(const (fun scale _ -> latency scale) $ scale_term $ csv_term)

let rcu_cmd =
  Cmd.v
    (Cmd.info "rcu" ~doc:"RCU flavour and node-lock cost comparison.")
    Term.(const (fun scale _ -> rcu_bench scale) $ scale_term $ csv_term)

let contention_cmd =
  Cmd.v
    (Cmd.info "contention" ~doc:"Throughput vs update fraction sweep.")
    Term.(
      const (wrap (fun scale _ -> contention scale))
      $ scale_term $ csv_term $ json_term)

let skew_cmd =
  Cmd.v
    (Cmd.info "skew" ~doc:"Throughput under Zipfian key popularity.")
    Term.(
      const (wrap (fun scale _ -> skew scale))
      $ scale_term $ csv_term $ json_term)

let gp_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI smoke scale: 50ms intervals, 2 and 4 synchronizers only. \
             The numbers are meaningless for performance; the run \
             validates the harness and the JSON schema.")
  in
  Cmd.v
    (Cmd.info "gp"
       ~doc:
         "Grace-period coalescing microbenchmark: concurrent synchronize \
          throughput with the coalescing machinery on vs off, per RCU \
          flavour.")
    Term.(const gp_bench $ scale_term $ quick $ json_term)

let serve_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI smoke scale: 0.2s runs at 1 and 2 shards. The numbers are \
             meaningless for performance; the run validates the harness \
             and the JSON schema.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Sharded-service benchmark: aggregate write throughput under \
          saturating open-loop load as the shard count grows (see \
          SERVING.md).")
    Term.(const serve_bench $ scale_term $ quick $ json_term)

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline" ~doc:"Throughput over time (grace-period stalls).")
    Term.(const (fun scale _ -> timeline scale) $ scale_term $ csv_term)

let callrcu_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI smoke scale: 0.15s single-repeat runs. The numbers are \
             meaningless for performance; the run validates the harness, \
             the A/B switch, and the JSON schema.")
  in
  Cmd.v
    (Cmd.info "callrcu"
       ~doc:
         "Inline grace-period waits vs the call_rcu background reclaimer: \
          write-heavy Citrus updater throughput (fig9-style), serve-bench \
          write p99 on the grace-period-bound configuration, and the \
          read-side registry cycle cost (must not change).")
    Term.(const callrcu_bench $ scale_term $ quick $ json_term)

let main =
  Cmd.group
    ~default:Term.(const (wrap run_all) $ scale_term $ csv_term $ json_term)
    (Cmd.info "bench" ~doc:"Reproduce the Citrus paper's evaluation.")
    [
      cmd "fig8" "RCU implementation impact on Citrus (Figure 8)." fig8;
      cmd "fig9" "Single-writer workload (Figure 9)." fig9;
      cmd "fig10" "Throughput grid (Figure 10)." fig10;
      ablation_cmd;
      contention_cmd;
      skew_cmd;
      timeline_cmd;
      serve_cmd;
      callrcu_cmd;
      gp_cmd;
      rcu_cmd;
      latency_cmd;
      micro_cmd;
      all_cmd;
    ]

let () =
  (* [Runner.run] raises [Registry.Full] on the calling thread after all
     worker domains have been joined, so this catch leaves no stragglers:
     report the operator error in one line and exit 2 like other usage
     errors. *)
  try exit (Cmd.eval main)
  with Repro_sync.Registry.Full ->
    prerr_endline
      "error: RCU thread registry full — the requested thread count exceeds \
       the structure's registered-thread capacity; reduce --threads";
    exit 2
